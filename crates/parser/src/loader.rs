//! Symbol resolution: turns the syntactic AST into signature-checked terms.
//!
//! The loader enforces the paper's syntactic discipline:
//!
//! * `F`, `T`, `P` are disjoint and every symbol has a fixed arity;
//! * types (in `PRED` declarations and subtype constraints) are terms over
//!   `F ∪ T`;
//! * program atoms are predicate symbols applied to terms over `F`
//!   (variables allowed, of course);
//! * each clause/query gets its own variable scope; `_` is anonymous.
//!
//! Predicate symbols are declared implicitly by use (a `PRED` declaration is
//! only required for *type checking*, not for loading); function symbols may
//! be declared implicitly too by enabling
//! [`LoaderOptions::implicit_funcs`] — useful for running plain untyped
//! Prolog programs through the engine.

use std::collections::HashMap;

use lp_engine::{Clause, ClauseOrigin};
use lp_term::{NameHints, Signature, Sym, SymKind, Term, Var, VarGen};

use crate::ast::{Item, Mode, ModeDeclAst, TermAst};
use crate::error::{ParseError, ParseErrorKind};
use crate::parser::parse_items;
use crate::token::Span;

/// Loader configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoaderOptions {
    /// Declare unknown lower-case symbols in *program term* positions as
    /// function symbols instead of erroring. Off by default: the paper's
    /// language declares `F` explicitly with `FUNC`.
    pub implicit_funcs: bool,
    /// Predeclare the polymorphic union constructor `+` together with its
    /// constraints `A+B >= A.` and `A+B >= B.` (paper §1). On by default.
    pub predefine_union: bool,
}

impl Default for LoaderOptions {
    fn default() -> Self {
        LoaderOptions {
            implicit_funcs: false,
            predefine_union: true,
        }
    }
}

/// A loaded subtype constraint `lhs >= rhs` with presentation metadata.
#[derive(Debug, Clone)]
pub struct LoadedConstraint {
    /// The left-hand side `c(τ₁…τₙ)` (a type-constructor application).
    pub lhs: Term,
    /// The right-hand side type.
    pub rhs: Term,
    /// Source names for the constraint's parameter variables.
    pub hints: NameHints,
    /// Source location; `None` for predefined (builtin) constraints.
    pub span: Option<Span>,
}

/// A loaded program clause with presentation metadata.
#[derive(Debug, Clone)]
pub struct LoadedClause {
    /// The engine clause.
    pub clause: Clause,
    /// Source names for the clause's variables.
    pub hints: NameHints,
    /// Source location.
    pub span: Span,
    /// Source locations of the atoms: head first, then each body atom.
    pub atom_spans: Vec<Span>,
    /// Every occurrence of a *named* variable, in source order.
    pub var_spans: Vec<(Var, Span)>,
}

/// A loaded query with presentation metadata.
#[derive(Debug, Clone)]
pub struct LoadedQuery {
    /// The goal atoms.
    pub goals: Vec<Term>,
    /// Source names for the query's variables.
    pub hints: NameHints,
    /// Source location.
    pub span: Span,
    /// Source locations of the goal atoms.
    pub atom_spans: Vec<Span>,
    /// Every occurrence of a *named* variable, in source order.
    pub var_spans: Vec<(Var, Span)>,
}

/// A fully loaded module: signature plus everything declared in the source.
#[derive(Debug, Clone)]
pub struct Module {
    /// The signature with every declared (and predefined) symbol.
    pub sig: Signature,
    /// A variable generator positioned past every variable in the module.
    pub gen: VarGen,
    /// Raw subtype constraints in declaration order, including the
    /// predefined union constraints when enabled.
    pub constraints: Vec<LoadedConstraint>,
    /// Declared predicate types `p(τ₁, …, τₙ)`, one per predicate.
    pub pred_types: Vec<Term>,
    /// Source location of each `PRED` declaration, parallel to
    /// [`Module::pred_types`].
    pub pred_type_spans: Vec<Span>,
    /// Declared argument modes, one entry per `MODE`-declared predicate,
    /// in declaration order.
    pub pred_modes: Vec<(Sym, Vec<Mode>)>,
    /// Source location of each `MODE` declaration entry, parallel to
    /// [`Module::pred_modes`].
    pub pred_mode_spans: Vec<Span>,
    /// Declaration sites of explicitly declared symbols (`FUNC`/`TYPE`
    /// names), in declaration order.
    pub sym_spans: Vec<(Sym, Span)>,
    /// Program clauses in source order.
    pub clauses: Vec<LoadedClause>,
    /// Queries in source order.
    pub queries: Vec<LoadedQuery>,
    /// The predefined `+` constructor, if enabled.
    pub union_sym: Option<Sym>,
}

impl Module {
    /// Builds an engine [`Database`](lp_engine::Database) from the clauses,
    /// recording each clause's source index and span as its provenance.
    pub fn database(&self) -> lp_engine::Database {
        let mut db = lp_engine::Database::new();
        for (i, c) in self.clauses.iter().enumerate() {
            db.add_with_origin(
                c.clause.clone(),
                ClauseOrigin {
                    source_index: i,
                    span: Some((c.span.start, c.span.end)),
                },
            );
        }
        db
    }

    /// Declaration site of a `FUNC`/`TYPE` symbol, if it was declared in
    /// source (predefined and implicitly declared symbols have none).
    pub fn sym_span(&self, sym: Sym) -> Option<Span> {
        self.sym_spans
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|&(_, span)| span)
    }

    /// Source location of the `PRED` declaration for `pred`, if any.
    pub fn pred_type_span(&self, pred: Sym) -> Option<Span> {
        self.pred_types
            .iter()
            .position(|pt| pt.functor() == Some(pred))
            .and_then(|i| self.pred_type_spans.get(i).copied())
    }

    /// Declared argument modes of `pred`, if a `MODE` declaration exists.
    pub fn pred_mode(&self, pred: Sym) -> Option<&[Mode]> {
        self.pred_modes
            .iter()
            .find(|(p, _)| *p == pred)
            .map(|(_, ms)| ms.as_slice())
    }

    /// Source location of the `MODE` declaration for `pred`, if any.
    pub fn pred_mode_span(&self, pred: Sym) -> Option<Span> {
        self.pred_modes
            .iter()
            .position(|(p, _)| *p == pred)
            .and_then(|i| self.pred_mode_spans.get(i).copied())
    }
}

/// Parses and loads a source file in one step with default options.
///
/// # Errors
///
/// Any lexical, syntactic or resolution error, with its source span.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut loader = Loader::new(LoaderOptions::default());
    loader.load_source(src)?;
    Ok(loader.finish())
}

/// Position of a term within an item; drives kind checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Position {
    /// Inside a type (PRED argument or either side of `>=`): `F ∪ T`.
    Type,
    /// Inside an atom's arguments: `F` only.
    ProgramTerm,
}

/// Incremental loader; feed it items or whole sources, then [`finish`].
///
/// [`finish`]: Loader::finish
#[derive(Debug)]
pub struct Loader {
    options: LoaderOptions,
    sig: Signature,
    gen: VarGen,
    constraints: Vec<LoadedConstraint>,
    pred_types: Vec<Term>,
    pred_type_spans: Vec<Span>,
    pred_type_owner: HashMap<Sym, Span>,
    pred_modes: Vec<(Sym, Vec<Mode>)>,
    pred_mode_spans: Vec<Span>,
    pred_mode_owner: HashMap<Sym, Span>,
    sym_spans: Vec<(Sym, Span)>,
    clauses: Vec<LoadedClause>,
    queries: Vec<LoadedQuery>,
    union_sym: Option<Sym>,
}

impl Loader {
    /// Creates a loader, predeclaring `+` per `options`.
    pub fn new(options: LoaderOptions) -> Self {
        let mut sig = Signature::new();
        let mut gen = VarGen::new();
        let mut constraints = Vec::new();
        let union_sym = if options.predefine_union {
            let plus = sig
                .declare_with_arity("+", SymKind::TypeCtor, 2)
                .expect("fresh signature");
            // A+B >= A.   A+B >= B.
            let (a, b) = (gen.fresh(), gen.fresh());
            let lhs = Term::app(plus, vec![Term::Var(a), Term::Var(b)]);
            constraints.push(LoadedConstraint {
                lhs: lhs.clone(),
                rhs: Term::Var(a),
                hints: NameHints::new(),
                span: None,
            });
            let (a2, b2) = (gen.fresh(), gen.fresh());
            let lhs2 = Term::app(plus, vec![Term::Var(a2), Term::Var(b2)]);
            constraints.push(LoadedConstraint {
                lhs: lhs2,
                rhs: Term::Var(b2),
                hints: NameHints::new(),
                span: None,
            });
            Some(plus)
        } else {
            None
        };
        Loader {
            options,
            sig,
            gen,
            constraints,
            pred_types: Vec::new(),
            pred_type_spans: Vec::new(),
            pred_type_owner: HashMap::new(),
            pred_modes: Vec::new(),
            pred_mode_spans: Vec::new(),
            pred_mode_owner: HashMap::new(),
            sym_spans: Vec::new(),
            clauses: Vec::new(),
            queries: Vec::new(),
            union_sym,
        }
    }

    /// Access to the signature built so far.
    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    /// Re-opens a finished [`Module`] for further loading or for resolving
    /// additional terms against its signature (e.g. command-line queries).
    pub fn resume(module: Module, options: LoaderOptions) -> Self {
        let mut pred_type_owner = HashMap::new();
        for (i, pt) in module.pred_types.iter().enumerate() {
            if let Some(p) = pt.functor() {
                let span = module.pred_type_spans.get(i).copied().unwrap_or_default();
                pred_type_owner.insert(p, span);
            }
        }
        let mut pred_mode_owner = HashMap::new();
        for (i, (p, _)) in module.pred_modes.iter().enumerate() {
            let span = module.pred_mode_spans.get(i).copied().unwrap_or_default();
            pred_mode_owner.insert(*p, span);
        }
        Loader {
            options,
            sig: module.sig,
            gen: module.gen,
            constraints: module.constraints,
            pred_types: module.pred_types,
            pred_type_spans: module.pred_type_spans,
            pred_type_owner,
            pred_modes: module.pred_modes,
            pred_mode_spans: module.pred_mode_spans,
            pred_mode_owner,
            sym_spans: module.sym_spans,
            clauses: module.clauses,
            queries: module.queries,
            union_sym: module.union_sym,
        }
    }

    /// Parses and resolves a standalone *type* (a term over `F ∪ T`),
    /// returning it with the name hints for its variables.
    ///
    /// # Errors
    ///
    /// Lexical/syntactic errors, undeclared symbols, kind/arity clashes.
    pub fn parse_type(&mut self, src: &str) -> Result<(Term, NameHints), ParseError> {
        let ast = crate::parser::parse_single_term(src)?;
        let mut scope = Scope::new();
        let t = self.resolve(&ast, Position::Type, &mut scope)?;
        Ok((t, scope.hints))
    }

    /// Parses and resolves a standalone *program term* (a term over `F`).
    ///
    /// # Errors
    ///
    /// As for [`Loader::parse_type`].
    pub fn parse_program_term(&mut self, src: &str) -> Result<(Term, NameHints), ParseError> {
        let ast = crate::parser::parse_single_term(src)?;
        let mut scope = Scope::new();
        let t = self.resolve(&ast, Position::ProgramTerm, &mut scope)?;
        Ok((t, scope.hints))
    }

    /// Parses and resolves a standalone goal list `a₁, …, aₙ` (an optional
    /// leading `:-` and trailing `.` are accepted).
    ///
    /// # Errors
    ///
    /// As for [`Loader::parse_type`].
    pub fn parse_goals(&mut self, src: &str) -> Result<(Vec<Term>, NameHints), ParseError> {
        let trimmed = src.trim().trim_start_matches(":-");
        let dotted = trimmed.trim_end();
        let with_dot = if dotted.ends_with('.') {
            dotted.to_string()
        } else {
            format!("{dotted}.")
        };
        let items = parse_items(&format!(":- {with_dot}"))?;
        let [Item::Query { body, .. }] = items.as_slice() else {
            return Err(ParseError::new(
                ParseErrorKind::Malformed("expected a goal list".into()),
                Span::default(),
            ));
        };
        let mut scope = Scope::new();
        let mut goals = Vec::with_capacity(body.len());
        for b in body {
            goals.push(self.resolve_atom(b, &mut scope)?);
        }
        Ok((goals, scope.hints))
    }

    /// Parses `src` and loads all of its items.
    ///
    /// # Errors
    ///
    /// Any lexical, syntactic or resolution error.
    pub fn load_source(&mut self, src: &str) -> Result<(), ParseError> {
        for item in parse_items(src)? {
            self.load_item(&item)?;
        }
        Ok(())
    }

    /// Loads one already-parsed item.
    ///
    /// # Errors
    ///
    /// Resolution errors: undeclared symbols, kind clashes, arity clashes,
    /// malformed constraints, duplicate predicate types.
    pub fn load_item(&mut self, item: &Item) -> Result<(), ParseError> {
        match item {
            Item::FuncDecl(names) => {
                for n in names {
                    let sym = self
                        .sig
                        .declare(&n.name, SymKind::Func)
                        .map_err(|e| ParseError::from((e, n.span)))?;
                    self.record_sym_span(sym, n.span);
                }
                Ok(())
            }
            Item::TypeDecl(names) => {
                for n in names {
                    let sym = self
                        .sig
                        .declare(&n.name, SymKind::TypeCtor)
                        .map_err(|e| ParseError::from((e, n.span)))?;
                    self.record_sym_span(sym, n.span);
                }
                Ok(())
            }
            Item::PredDecl(types) => {
                for t in types {
                    self.load_pred_type(t)?;
                }
                Ok(())
            }
            Item::ModeDecl(decls) => {
                for d in decls {
                    self.load_mode_decl(d)?;
                }
                Ok(())
            }
            Item::Constraint { lhs, rhs, span } => self.load_constraint(lhs, rhs, *span),
            Item::Clause { head, body, span } => self.load_clause(head, body, *span),
            Item::Query { body, span } => self.load_query(body, *span),
        }
    }

    /// Consumes the loader, producing the module.
    pub fn finish(self) -> Module {
        Module {
            sig: self.sig,
            gen: self.gen,
            constraints: self.constraints,
            pred_types: self.pred_types,
            pred_type_spans: self.pred_type_spans,
            pred_modes: self.pred_modes,
            pred_mode_spans: self.pred_mode_spans,
            sym_spans: self.sym_spans,
            clauses: self.clauses,
            queries: self.queries,
            union_sym: self.union_sym,
        }
    }

    /// Remembers the *first* declaration site of a symbol.
    fn record_sym_span(&mut self, sym: Sym, span: Span) {
        if !self.sym_spans.iter().any(|(s, _)| *s == sym) {
            self.sym_spans.push((sym, span));
        }
    }

    fn load_pred_type(&mut self, t: &TermAst) -> Result<(), ParseError> {
        let TermAst::App { name, args, span } = t else {
            return Err(ParseError::new(
                ParseErrorKind::Malformed("a PRED declaration must name a predicate".into()),
                t.span(),
            ));
        };
        let pred = self
            .sig
            .declare(name, SymKind::Pred)
            .map_err(|e| ParseError::from((e, *span)))?;
        self.sig
            .fix_arity(pred, args.len())
            .map_err(|e| ParseError::from((e, *span)))?;
        if let Some(_prev) = self.pred_type_owner.insert(pred, *span) {
            return Err(ParseError::new(
                ParseErrorKind::Malformed(format!(
                    "duplicate predicate type for `{name}` (Definition 15 fixes one per predicate)"
                )),
                *span,
            ));
        }
        let mut scope = Scope::new();
        let mut resolved = Vec::with_capacity(args.len());
        for a in args {
            resolved.push(self.resolve(a, Position::Type, &mut scope)?);
        }
        self.pred_types.push(Term::app(pred, resolved));
        self.pred_type_spans.push(*span);
        Ok(())
    }

    fn load_mode_decl(&mut self, d: &ModeDeclAst) -> Result<(), ParseError> {
        let pred = self
            .sig
            .declare(&d.name, SymKind::Pred)
            .map_err(|e| ParseError::from((e, d.span)))?;
        self.sig
            .fix_arity(pred, d.modes.len())
            .map_err(|e| ParseError::from((e, d.span)))?;
        if self.pred_mode_owner.insert(pred, d.span).is_some() {
            return Err(ParseError::new(
                ParseErrorKind::Malformed(format!(
                    "duplicate mode declaration for `{}` (one MODE per predicate)",
                    d.name
                )),
                d.span,
            ));
        }
        self.pred_modes.push((pred, d.modes.clone()));
        self.pred_mode_spans.push(d.span);
        Ok(())
    }

    fn load_constraint(
        &mut self,
        lhs: &TermAst,
        rhs: &TermAst,
        span: Span,
    ) -> Result<(), ParseError> {
        let mut scope = Scope::new();
        let lhs_t = self.resolve(lhs, Position::Type, &mut scope)?;
        // Definition 2: the left-hand side is `c(τ₁…τₙ)` with `c ∈ T`.
        match lhs_t.functor() {
            Some(c) if self.sig.kind(c) == SymKind::TypeCtor => {}
            _ => {
                return Err(ParseError::new(
                    ParseErrorKind::Malformed(
                        "the left-hand side of a subtype constraint must be a type-constructor \
                         application (Definition 2)"
                            .into(),
                    ),
                    lhs.span(),
                ));
            }
        }
        let rhs_t = self.resolve(rhs, Position::Type, &mut scope)?;
        // Definition 2: var(rhs) ⊆ var(lhs).
        let lhs_vars = lhs_t.vars();
        if let Some(v) = rhs_t.vars().difference(&lhs_vars).next() {
            let name = scope
                .hints
                .get(*v)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("_G{}", v.0));
            return Err(ParseError::new(
                ParseErrorKind::Malformed(format!(
                    "variable `{name}` occurs on the right of `>=` but not on the left \
                     (Definition 2 requires var(τ) ⊆ var(c(τ₁…τₙ)))"
                )),
                span,
            ));
        }
        self.constraints.push(LoadedConstraint {
            lhs: lhs_t,
            rhs: rhs_t,
            hints: scope.hints,
            span: Some(span),
        });
        Ok(())
    }

    fn load_clause(
        &mut self,
        head: &TermAst,
        body: &[TermAst],
        span: Span,
    ) -> Result<(), ParseError> {
        let mut scope = Scope::new();
        let mut atom_spans = Vec::with_capacity(body.len() + 1);
        atom_spans.push(head.span());
        let head_t = self.resolve_atom(head, &mut scope)?;
        let mut body_t = Vec::with_capacity(body.len());
        for b in body {
            atom_spans.push(b.span());
            body_t.push(self.resolve_atom(b, &mut scope)?);
        }
        self.clauses.push(LoadedClause {
            clause: Clause::rule(head_t, body_t),
            hints: scope.hints,
            span,
            atom_spans,
            var_spans: scope.occurrences,
        });
        Ok(())
    }

    fn load_query(&mut self, body: &[TermAst], span: Span) -> Result<(), ParseError> {
        let mut scope = Scope::new();
        let mut goals = Vec::with_capacity(body.len());
        let mut atom_spans = Vec::with_capacity(body.len());
        for b in body {
            atom_spans.push(b.span());
            goals.push(self.resolve_atom(b, &mut scope)?);
        }
        self.queries.push(LoadedQuery {
            goals,
            hints: scope.hints,
            span,
            atom_spans,
            var_spans: scope.occurrences,
        });
        Ok(())
    }

    /// Resolves an atom: predicate applied to program terms.
    fn resolve_atom(&mut self, t: &TermAst, scope: &mut Scope) -> Result<Term, ParseError> {
        let TermAst::App { name, args, span } = t else {
            return Err(ParseError::new(
                ParseErrorKind::Malformed("an atom cannot be a variable".into()),
                t.span(),
            ));
        };
        // Predicates are declared implicitly by use.
        let pred = self
            .sig
            .declare(name, SymKind::Pred)
            .map_err(|e| ParseError::from((e, *span)))?;
        self.sig
            .fix_arity(pred, args.len())
            .map_err(|e| ParseError::from((e, *span)))?;
        let mut resolved = Vec::with_capacity(args.len());
        for a in args {
            resolved.push(self.resolve(a, Position::ProgramTerm, scope)?);
        }
        Ok(Term::app(pred, resolved))
    }

    /// Resolves a term in a type or program-term position.
    fn resolve(
        &mut self,
        t: &TermAst,
        pos: Position,
        scope: &mut Scope,
    ) -> Result<Term, ParseError> {
        match t {
            TermAst::Var { name, span } => Ok(Term::Var(scope.var(&mut self.gen, name, *span))),
            TermAst::App { name, args, span } => {
                let sym = match self.sig.lookup(name) {
                    Some(s) => {
                        let kind = self.sig.kind(s);
                        let ok = match pos {
                            Position::Type => kind == SymKind::Func || kind == SymKind::TypeCtor,
                            Position::ProgramTerm => kind == SymKind::Func,
                        };
                        if !ok {
                            let wanted = match pos {
                                Position::Type => "a function symbol or type constructor",
                                Position::ProgramTerm => "a function symbol",
                            };
                            return Err(ParseError::new(
                                ParseErrorKind::Malformed(format!(
                                    "`{name}` is a {} but {wanted} is required here",
                                    kind
                                )),
                                *span,
                            ));
                        }
                        s
                    }
                    None if pos == Position::ProgramTerm && self.options.implicit_funcs => self
                        .sig
                        .declare(name, SymKind::Func)
                        .map_err(|e| ParseError::from((e, *span)))?,
                    None => {
                        return Err(ParseError::new(
                            ParseErrorKind::UndeclaredSymbol(name.clone()),
                            *span,
                        ));
                    }
                };
                self.sig
                    .fix_arity(sym, args.len())
                    .map_err(|e| ParseError::from((e, *span)))?;
                let mut resolved = Vec::with_capacity(args.len());
                for a in args {
                    resolved.push(self.resolve(a, pos, scope)?);
                }
                Ok(Term::app(sym, resolved))
            }
        }
    }
}

/// Per-item variable scope.
#[derive(Default)]
struct Scope {
    by_name: HashMap<String, Var>,
    hints: NameHints,
    /// Occurrences of named (non-`_`) variables, in source order.
    occurrences: Vec<(Var, Span)>,
}

impl Scope {
    fn new() -> Self {
        Self::default()
    }

    fn var(&mut self, gen: &mut VarGen, name: &str, span: Span) -> Var {
        if name == "_" {
            // Anonymous: every occurrence is fresh and never reported.
            return gen.fresh();
        }
        if let Some(&v) = self.by_name.get(name) {
            self.occurrences.push((v, span));
            return v;
        }
        let v = gen.fresh();
        self.by_name.insert(name.to_string(), v);
        self.hints.insert(v, name);
        self.occurrences.push((v, span));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTS: &str = "
        FUNC nil, cons.
        TYPE elist, nelist, list.
        elist >= nil.
        nelist(A) >= cons(A, list(A)).
        list(A) >= elist + nelist(A).
        PRED app(list(A), list(A), list(A)).
        app(nil, L, L).
        app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
        :- app(nil, nil, Z).
    ";

    #[test]
    fn loads_paper_list_module() {
        let m = parse_module(LISTS).unwrap();
        // 2 builtin union constraints + 3 declared.
        assert_eq!(m.constraints.len(), 5);
        assert_eq!(m.pred_types.len(), 1);
        assert_eq!(m.clauses.len(), 2);
        assert_eq!(m.queries.len(), 1);
        let app = m.sig.lookup("app").unwrap();
        assert_eq!(m.sig.kind(app), SymKind::Pred);
        assert_eq!(m.sig.arity(app), Some(3));
        let list = m.sig.lookup("list").unwrap();
        assert_eq!(m.sig.kind(list), SymKind::TypeCtor);
        assert_eq!(m.sig.arity(list), Some(1));
    }

    #[test]
    fn loaded_program_runs_on_engine() {
        use lp_engine::{Query, SolveConfig};
        let m = parse_module(LISTS).unwrap();
        let db = m.database();
        let q = &m.queries[0];
        let mut run = Query::new(&db, q.goals.clone(), SolveConfig::default());
        let sol = run.next_solution().expect("append query succeeds");
        // Z = nil.
        let z = q.goals[0].args()[2].clone();
        let nil = m.sig.lookup("nil").unwrap();
        assert_eq!(sol.answer.resolve(&z), Term::constant(nil));
    }

    #[test]
    fn undeclared_symbol_in_clause_errors() {
        let err = parse_module("p(foo).").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UndeclaredSymbol(ref n) if n == "foo"));
    }

    #[test]
    fn implicit_funcs_declares_on_use() {
        let mut loader = Loader::new(LoaderOptions {
            implicit_funcs: true,
            ..LoaderOptions::default()
        });
        loader.load_source("p(foo, bar(foo)).").unwrap();
        let m = loader.finish();
        assert_eq!(m.sig.kind(m.sig.lookup("foo").unwrap()), SymKind::Func);
        assert_eq!(m.sig.arity(m.sig.lookup("bar").unwrap()), Some(1));
    }

    #[test]
    fn constraint_lhs_must_be_type_ctor() {
        let err = parse_module("FUNC f. TYPE t. f(A) >= t.").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Malformed(_)));
        assert!(err.to_string().contains("Definition 2"));
    }

    #[test]
    fn constraint_rhs_vars_must_be_bound_by_lhs() {
        let err = parse_module("TYPE c, d. c(A) >= d(A, B).").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Malformed(_)));
        assert!(err.to_string().contains('B'));
    }

    #[test]
    fn mode_decl_loads_with_span_and_arity() {
        let src = "TYPE t. PRED p(t, t). MODE p(+, -).";
        let m = parse_module(src).unwrap();
        let p = m.sig.lookup("p").unwrap();
        assert_eq!(m.pred_mode(p), Some(&[Mode::In, Mode::Out][..]));
        let span = m.pred_mode_span(p).expect("MODE entry has a span");
        assert_eq!(&src[span.start..span.end], "p(+, -)");
    }

    #[test]
    fn mode_decl_declares_pred_implicitly() {
        let m = parse_module("MODE q(+).").unwrap();
        let q = m.sig.lookup("q").unwrap();
        assert_eq!(m.sig.kind(q), SymKind::Pred);
        assert_eq!(m.sig.arity(q), Some(1));
    }

    #[test]
    fn duplicate_mode_decl_rejected() {
        let err = parse_module("MODE p(+). MODE p(-).").unwrap_err();
        assert!(err.to_string().contains("duplicate mode"));
    }

    #[test]
    fn mode_decl_arity_clash_rejected() {
        let err = parse_module("TYPE t. PRED p(t). MODE p(+, -).").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Signature(lp_term::SigError::ArityClash { .. })
        ));
    }

    #[test]
    fn resume_preserves_mode_decls() {
        let m = parse_module("MODE p(+).").unwrap();
        let mut loader = Loader::resume(m, LoaderOptions::default());
        let err = loader.load_source("MODE p(-).").unwrap_err();
        assert!(err.to_string().contains("duplicate mode"));
    }

    #[test]
    fn duplicate_pred_type_rejected() {
        let err = parse_module("TYPE t. PRED p(t). PRED p(t).").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn type_ctor_rejected_in_program_position() {
        let err = parse_module("TYPE t. p(t).").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Malformed(_)));
    }

    #[test]
    fn pred_rejected_inside_type() {
        let err = parse_module("PRED q(r). ").unwrap_err();
        // `r` is undeclared here.
        assert!(matches!(err.kind, ParseErrorKind::UndeclaredSymbol(_)));
    }

    #[test]
    fn arity_clash_detected_across_items() {
        let err = parse_module("FUNC f. TYPE t. t >= f(t). PRED p(t). p(f(X, Y)).").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Signature(lp_term::SigError::ArityClash { .. })
        ));
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let m = parse_module("p(_, _).").unwrap();
        let c = &m.clauses[0].clause;
        let vars = c.vars();
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn named_variables_are_shared_within_clause() {
        let m = parse_module("p(X, X).").unwrap();
        assert_eq!(m.clauses[0].clause.vars().len(), 1);
    }

    #[test]
    fn variable_scopes_are_per_clause() {
        let m = parse_module("p(X). q(X).").unwrap();
        let v1 = m.clauses[0].clause.vars();
        let v2 = m.clauses[1].clause.vars();
        assert!(v1.is_disjoint(&v2));
    }

    #[test]
    fn union_predefined_with_builtin_constraints() {
        let m = parse_module("").unwrap();
        let plus = m.union_sym.expect("predefined +");
        assert_eq!(m.sig.kind(plus), SymKind::TypeCtor);
        assert_eq!(m.constraints.len(), 2);
        // Both constraints have `+` on the left, and neither has a span.
        for c in &m.constraints {
            assert_eq!(c.lhs.functor(), Some(plus));
            assert_eq!(c.span, None);
        }
    }

    #[test]
    fn spans_survive_lowering() {
        let m = parse_module(LISTS).unwrap();
        let src = LISTS;
        // Declared constraints carry their source spans.
        for c in &m.constraints[2..] {
            let span = c.span.expect("declared constraint has a span");
            assert!(src[span.start..span.end].contains(">="));
        }
        // The PRED declaration span covers the predicate type.
        assert_eq!(m.pred_type_spans.len(), 1);
        let ps = m.pred_type_spans[0];
        assert!(src[ps.start..ps.end].starts_with("app"));
        // Symbol declaration sites point at the declared names.
        let nil = m.sig.lookup("nil").unwrap();
        let span = m.sym_span(nil).expect("nil declared in source");
        assert_eq!(&src[span.start..span.end], "nil");
        // Clause atom spans: head first, then body atoms.
        let rule = &m.clauses[1];
        assert_eq!(rule.atom_spans.len(), 2);
        assert!(src[rule.atom_spans[0].start..].starts_with("app(cons"));
        assert!(src[rule.atom_spans[1].start..].starts_with("app(L"));
        // Named-variable occurrences: X, L, M, X, N in the head, L, M, N in
        // the body — 8 occurrences of 4 distinct variables.
        assert_eq!(rule.var_spans.len(), 8);
        let distinct: std::collections::HashSet<_> =
            rule.var_spans.iter().map(|(v, _)| *v).collect();
        assert_eq!(distinct.len(), 4);
        for (v, span) in &rule.var_spans {
            let name = rule.hints.get(*v).expect("named var has a hint");
            assert_eq!(&src[span.start..span.end], name);
        }
    }

    #[test]
    fn database_records_provenance() {
        let m = parse_module(LISTS).unwrap();
        let db = m.database();
        for i in 0..db.len() {
            let origin = db.origin(i).expect("loaded clause has an origin");
            assert_eq!(origin.source_index, i);
            let (start, end) = origin.span.expect("loaded clause has a span");
            assert_eq!(
                (start, end),
                (m.clauses[i].span.start, m.clauses[i].span.end)
            );
        }
    }

    #[test]
    fn nonuniform_id_example_loads() {
        // The paper's non-uniform polymorphic type (§1).
        let src = "
            FUNC 0, succ, m, f.
            TYPE nat, males, females, id, person.
            nat >= 0 + succ(nat).
            id(males) >= m(nat).
            id(females) >= f(nat).
            person >= males + females.
        ";
        let m = parse_module(src).unwrap();
        assert_eq!(m.constraints.len(), 2 + 4);
    }
}
