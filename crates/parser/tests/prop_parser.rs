//! Robustness properties of the front end: the parser never panics, spans
//! stay within bounds, and valid programs round-trip through the unparser.

use proptest::prelude::*;

use lp_parser::{parse_items, parse_module, unparse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC*") {
        // Any outcome is fine; panicking is not.
        let _ = parse_items(&src);
        let _ = parse_module(&src);
    }

    #[test]
    fn parser_never_panics_on_symbol_soup(
        src in proptest::collection::vec(
            prop_oneof![
                Just("FUNC".to_string()),
                Just("TYPE".to_string()),
                Just("PRED".to_string()),
                Just(":-".to_string()),
                Just(">=".to_string()),
                Just("+".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                "[a-z][a-z0-9]{0,3}",
                "[A-Z][a-z0-9]{0,3}",
                "[0-9]{1,3}",
            ],
            0..30,
        ).prop_map(|toks| toks.join(" "))
    ) {
        let _ = parse_module(&src);
    }

    #[test]
    fn error_spans_are_in_bounds(src in "\\PC{0,80}") {
        if let Err(e) = parse_module(&src) {
            prop_assert!(e.span.start <= e.span.end);
            prop_assert!(e.span.end <= src.len() + 1);
            // Rendering must not panic either.
            let _ = e.render(&src);
        }
    }
}

#[test]
fn structured_programs_round_trip() {
    // A deterministic family of generated programs parses, unparses, and
    // re-parses to the same canonical text.
    for n in [1usize, 3, 7] {
        let src = lp_gen::programs::pipeline(n, 2);
        let m1 = parse_module(&src).unwrap();
        let t1 = unparse(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = unparse(&m2);
        assert_eq!(t1, t2, "fixpoint failed for pipeline({n})");
        assert_eq!(m1.clauses.len(), m2.clauses.len());
    }
}
