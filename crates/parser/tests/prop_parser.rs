//! Robustness properties of the front end: the parser never panics, spans
//! stay within bounds, and valid programs round-trip through the unparser.

use proptest::prelude::*;

use lp_parser::{parse_items, parse_module, unparse, ParseErrorKind, MAX_TERM_DEPTH};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC*") {
        // Any outcome is fine; panicking is not.
        let _ = parse_items(&src);
        let _ = parse_module(&src);
    }

    #[test]
    fn parser_never_panics_on_symbol_soup(
        src in proptest::collection::vec(
            prop_oneof![
                Just("FUNC".to_string()),
                Just("TYPE".to_string()),
                Just("PRED".to_string()),
                Just(":-".to_string()),
                Just(">=".to_string()),
                Just("+".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                "[a-z][a-z0-9]{0,3}",
                "[A-Z][a-z0-9]{0,3}",
                "[0-9]{1,3}",
            ],
            0..30,
        ).prop_map(|toks| toks.join(" "))
    ) {
        let _ = parse_module(&src);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        // File contents arrive as bytes; truncated or invalid UTF-8 is
        // decoded lossily (as the CLI does) and must still only ever
        // produce a value or a spanned error.
        let src = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_module(&src) {
            prop_assert!(e.span.start <= e.span.end);
            let _ = e.render(&src);
        }
    }

    #[test]
    fn nesting_beyond_the_limit_is_a_spanned_error(extra in 1usize..60) {
        // `p(p(p(...)))` deeper than MAX_TERM_DEPTH: a diagnostic, never a
        // stack overflow.
        let depth = MAX_TERM_DEPTH + extra;
        let mut src = String::from("FUNC p. ");
        for _ in 0..depth { src.push_str("p("); }
        src.push('p');
        for _ in 0..depth { src.push(')'); }
        src.push('.');
        let e = parse_items(&src).expect_err("too deep");
        prop_assert_eq!(e.kind, ParseErrorKind::NestingTooDeep(MAX_TERM_DEPTH));
        prop_assert!(e.span.start <= e.span.end && e.span.end <= src.len() + 1);
    }

    #[test]
    fn error_spans_are_in_bounds(src in "\\PC{0,80}") {
        if let Err(e) = parse_module(&src) {
            prop_assert!(e.span.start <= e.span.end);
            prop_assert!(e.span.end <= src.len() + 1);
            // Rendering must not panic either.
            let _ = e.render(&src);
        }
    }
}

#[test]
fn nesting_at_the_limit_still_parses() {
    let mut src = String::from("FUNC p. ");
    for _ in 0..MAX_TERM_DEPTH - 1 {
        src.push_str("p(");
    }
    src.push('p');
    for _ in 0..MAX_TERM_DEPTH - 1 {
        src.push(')');
    }
    src.push('.');
    parse_items(&src).expect("depth exactly at the limit is legal");
}

/// Replays the committed hardening corpus (`tests/corpus/*.slp`): inputs
/// that historically threaten recursive-descent front ends — deep nesting,
/// truncated UTF-8, NULs, unterminated comments. Every one must produce a
/// value or a spanned, renderable error; none may panic or overflow.
#[test]
fn hardening_corpus_never_panics() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .map(|e| e.expect("corpus entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus must not be empty");
    for path in paths {
        let bytes = std::fs::read(&path).expect("corpus file reads");
        let src = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_module(&src) {
            assert!(e.span.start <= e.span.end, "{}", path.display());
            let rendered = e.render(&src);
            assert!(!rendered.is_empty(), "{}", path.display());
        }
    }
}

#[test]
fn structured_programs_round_trip() {
    // A deterministic family of generated programs parses, unparses, and
    // re-parses to the same canonical text.
    for n in [1usize, 3, 7] {
        let src = lp_gen::programs::pipeline(n, 2);
        let m1 = parse_module(&src).unwrap();
        let t1 = unparse(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = unparse(&m2);
        assert_eq!(t1, t2, "fixpoint failed for pipeline({n})");
        assert_eq!(m1.clauses.len(), m2.clauses.len());
    }
}
