//! Terms over a set of symbols (paper §2).
//!
//! "A term over a set of symbols S is either a variable or a symbol
//! `s/n ∈ S` applied to n terms over S." Types (Definition 1) are terms over
//! `F ∪ T`; atoms are predicate symbols applied to terms over `F`. All of
//! these share the single [`Term`] representation; the classification lives
//! in the [`Signature`](crate::Signature).

use std::collections::BTreeSet;

use crate::symbol::Sym;

/// A logic variable.
///
/// Variables are plain numeric handles; human-readable names (from source
/// text) are kept externally in [`NameHints`](crate::NameHints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A first-order term: a variable or a symbol applied to argument terms.
///
/// Constants are 0-ary applications (the paper "treats 0-ary symbols as if
/// they were arbitrary n-ary symbols" and so do we).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// `s(t₁, …, tₙ)`; `n = 0` for constants.
    App(Sym, Vec<Term>),
}

impl Term {
    /// Builds an application term `sym(args…)`.
    pub fn app(sym: Sym, args: Vec<Term>) -> Self {
        Term::App(sym, args)
    }

    /// Builds a constant (0-ary application).
    pub fn constant(sym: Sym) -> Self {
        Term::App(sym, Vec::new())
    }

    /// Builds a variable term.
    pub fn var(v: Var) -> Self {
        Term::Var(v)
    }

    /// The outermost symbol, or `None` for a variable.
    pub fn functor(&self) -> Option<Sym> {
        match self {
            Term::Var(_) => None,
            Term::App(s, _) => Some(*s),
        }
    }

    /// The argument list, empty for variables and constants.
    pub fn args(&self) -> &[Term] {
        match self {
            Term::Var(_) => &[],
            Term::App(_, args) => args,
        }
    }

    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Number of symbol and variable occurrences (the paper's "size of t",
    /// used in the termination argument for `match`, Theorem 5).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Height of the term tree; a variable or constant has depth 1.
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// The set of variables occurring in the term, in sorted order.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Accumulates the variables of the term into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Whether `v` occurs in the term.
    pub fn contains_var(&self, v: Var) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::App(_, args) => args.iter().any(|a| a.contains_var(v)),
        }
    }

    /// Whether the symbol `s` occurs anywhere in the term.
    pub fn contains_sym(&self, s: Sym) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(t, args) => *t == s || args.iter().any(|a| a.contains_sym(s)),
        }
    }

    /// Pre-order iterator over all subterms, including the term itself.
    pub fn subterms(&self) -> Subterms<'_> {
        Subterms { stack: vec![self] }
    }

    /// Rewrites every variable through `f`, rebuilding the term.
    pub fn map_vars(&self, f: &mut impl FnMut(Var) -> Term) -> Term {
        match self {
            Term::Var(v) => f(*v),
            Term::App(s, args) => Term::App(*s, args.iter().map(|a| a.map_vars(f)).collect()),
        }
    }
}

/// Pre-order subterm iterator returned by [`Term::subterms`].
#[derive(Debug)]
pub struct Subterms<'a> {
    stack: Vec<&'a Term>,
}

impl<'a> Iterator for Subterms<'a> {
    type Item = &'a Term;

    fn next(&mut self) -> Option<&'a Term> {
        let t = self.stack.pop()?;
        if let Term::App(_, args) = t {
            // Push in reverse so iteration visits arguments left to right.
            for a in args.iter().rev() {
                self.stack.push(a);
            }
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Signature, SymKind};

    fn fixture() -> (Signature, Sym, Sym, Sym) {
        let mut sig = Signature::new();
        let f = sig.declare("f", SymKind::Func).unwrap();
        let g = sig.declare("g", SymKind::Func).unwrap();
        let a = sig.declare("a", SymKind::Func).unwrap();
        (sig, f, g, a)
    }

    #[test]
    fn size_and_depth() {
        let (_sig, f, g, a) = fixture();
        // f(g(a), X)
        let t = Term::app(
            f,
            vec![Term::app(g, vec![Term::constant(a)]), Term::Var(Var(0))],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
        assert!(!t.is_ground());
        assert!(Term::constant(a).is_ground());
    }

    #[test]
    fn vars_are_sorted_and_deduped() {
        let (_sig, f, _g, _a) = fixture();
        let t = Term::app(
            f,
            vec![Term::Var(Var(3)), Term::Var(Var(1)), Term::Var(Var(3))],
        );
        let vs: Vec<_> = t.vars().into_iter().collect();
        assert_eq!(vs, vec![Var(1), Var(3)]);
    }

    #[test]
    fn contains_checks() {
        let (_sig, f, g, a) = fixture();
        let t = Term::app(f, vec![Term::app(g, vec![Term::Var(Var(7))])]);
        assert!(t.contains_var(Var(7)));
        assert!(!t.contains_var(Var(8)));
        assert!(t.contains_sym(g));
        assert!(!t.contains_sym(a));
    }

    #[test]
    fn subterm_iteration_is_preorder() {
        let (_sig, f, g, a) = fixture();
        let t = Term::app(
            f,
            vec![Term::app(g, vec![Term::constant(a)]), Term::Var(Var(0))],
        );
        let order: Vec<_> = t
            .subterms()
            .map(|s| match s {
                Term::Var(_) => "var".to_string(),
                Term::App(sym, _) => format!("sym{}", sym.index()),
            })
            .collect();
        assert_eq!(order, vec!["sym0", "sym1", "sym2", "var"]);
    }

    #[test]
    fn map_vars_rebuilds() {
        let (_sig, f, _g, a) = fixture();
        let t = Term::app(f, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let u = t.map_vars(&mut |v| {
            if v == Var(0) {
                Term::constant(a)
            } else {
                Term::Var(v)
            }
        });
        assert_eq!(u, Term::app(f, vec![Term::constant(a), Term::Var(Var(1))]));
    }
}
