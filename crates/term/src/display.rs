//! Pretty-printing of terms.
//!
//! Terms store only symbol handles, so printing needs the
//! [`Signature`](crate::Signature); [`TermDisplay`] bundles the two. Source
//! variable names (from the parser) can be supplied via [`NameHints`];
//! unnamed variables print as `_G<n>`.
//!
//! The predefined polymorphic union constructor `+` (paper §1) and any other
//! binary symbol with a purely non-alphanumeric name are printed infix:
//! `elist + nelist(A)` rather than `+(elist, nelist(A))`.

use std::collections::HashMap;
use std::fmt;

use crate::symbol::Signature;
use crate::term::{Term, Var};

/// Human-readable names for variables, typically from source text.
#[derive(Debug, Clone, Default)]
pub struct NameHints {
    names: HashMap<Var, String>,
}

impl NameHints {
    /// An empty hint table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `v` should print as `name`.
    pub fn insert(&mut self, v: Var, name: impl Into<String>) {
        self.names.insert(v, name.into());
    }

    /// The recorded name for `v`, if any.
    pub fn get(&self, v: Var) -> Option<&str> {
        self.names.get(&v).map(|s| s.as_str())
    }

    /// Number of named variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has a name hint.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(variable, name)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &str)> {
        self.names.iter().map(|(v, n)| (*v, n.as_str()))
    }
}

/// A displayable view of a term, borrowing its signature and name hints.
///
/// ```
/// use lp_term::{Signature, SymKind, Term, TermDisplay};
///
/// let mut sig = Signature::new();
/// let cons = sig.declare("cons", SymKind::Func).unwrap();
/// let nil = sig.declare("nil", SymKind::Func).unwrap();
/// let t = Term::app(cons, vec![Term::constant(nil), Term::constant(nil)]);
/// assert_eq!(TermDisplay::new(&t, &sig).to_string(), "cons(nil, nil)");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TermDisplay<'a> {
    term: &'a Term,
    sig: &'a Signature,
    hints: Option<&'a NameHints>,
}

impl<'a> TermDisplay<'a> {
    /// Displays `term` using `sig` for symbol names.
    pub fn new(term: &'a Term, sig: &'a Signature) -> Self {
        TermDisplay {
            term,
            sig,
            hints: None,
        }
    }

    /// Adds variable name hints.
    pub fn with_hints(mut self, hints: &'a NameHints) -> Self {
        self.hints = Some(hints);
        self
    }

    fn write_term(&self, t: &Term, f: &mut fmt::Formatter<'_>, infix_arg: bool) -> fmt::Result {
        match t {
            Term::Var(v) => match self.hints.and_then(|h| h.get(*v)) {
                Some(name) => f.write_str(name),
                None => write!(f, "_G{}", v.0),
            },
            Term::App(s, args) => {
                let name = self.sig.name(*s);
                let is_operator = !name.chars().any(|c| c.is_alphanumeric() || c == '_');
                if is_operator && args.len() == 2 {
                    // Infix; parenthesize nested infix applications for
                    // unambiguous re-parsing (the parser treats `+` as
                    // left-associative, matching this layout).
                    if infix_arg {
                        f.write_str("(")?;
                    }
                    self.write_term(&args[0], f, false)?;
                    write!(f, " {name} ")?;
                    self.write_term(&args[1], f, true)?;
                    if infix_arg {
                        f.write_str(")")?;
                    }
                    Ok(())
                } else {
                    f.write_str(name)?;
                    if !args.is_empty() {
                        f.write_str("(")?;
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            self.write_term(a, f, false)?;
                        }
                        f.write_str(")")?;
                    }
                    Ok(())
                }
            }
        }
    }
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_term(self.term, f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymKind;

    #[test]
    fn plain_application() {
        let mut sig = Signature::new();
        let f = sig.declare("f", SymKind::Func).unwrap();
        let a = sig.declare("a", SymKind::Func).unwrap();
        let t = Term::app(f, vec![Term::constant(a), Term::Var(Var(3))]);
        assert_eq!(TermDisplay::new(&t, &sig).to_string(), "f(a, _G3)");
    }

    #[test]
    fn hints_override_variable_names() {
        let mut sig = Signature::new();
        let f = sig.declare("f", SymKind::Func).unwrap();
        let t = Term::app(f, vec![Term::Var(Var(0))]);
        let mut hints = NameHints::new();
        hints.insert(Var(0), "Xs");
        assert_eq!(
            TermDisplay::new(&t, &sig).with_hints(&hints).to_string(),
            "f(Xs)"
        );
    }

    #[test]
    fn union_prints_infix() {
        let mut sig = Signature::new();
        let plus = sig.declare("+", SymKind::TypeCtor).unwrap();
        let elist = sig.declare("elist", SymKind::TypeCtor).unwrap();
        let nelist = sig.declare("nelist", SymKind::TypeCtor).unwrap();
        let t = Term::app(
            plus,
            vec![
                Term::constant(elist),
                Term::app(nelist, vec![Term::Var(Var(0))]),
            ],
        );
        assert_eq!(
            TermDisplay::new(&t, &sig).to_string(),
            "elist + nelist(_G0)"
        );
    }

    #[test]
    fn nested_infix_parenthesizes_right_arg() {
        let mut sig = Signature::new();
        let plus = sig.declare("+", SymKind::TypeCtor).unwrap();
        let a = sig.declare("a", SymKind::TypeCtor).unwrap();
        let b = sig.declare("b", SymKind::TypeCtor).unwrap();
        let c = sig.declare("c", SymKind::TypeCtor).unwrap();
        // +(a, +(b, c)) — right-nested must parenthesize.
        let t = Term::app(
            plus,
            vec![
                Term::constant(a),
                Term::app(plus, vec![Term::constant(b), Term::constant(c)]),
            ],
        );
        assert_eq!(TermDisplay::new(&t, &sig).to_string(), "a + (b + c)");
        // +(+(a, b), c) — left-nested matches associativity, no parens.
        let t2 = Term::app(
            plus,
            vec![
                Term::app(plus, vec![Term::constant(a), Term::constant(b)]),
                Term::constant(c),
            ],
        );
        assert_eq!(TermDisplay::new(&t2, &sig).to_string(), "a + b + c");
    }
}
