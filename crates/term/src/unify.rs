//! Most general unification (Robinson / Martelli–Montanari style).
//!
//! The engine and the type checker both rely on mgus being **idempotent and
//! relevant**, as the paper assumes (§4); [`unify`] builds a triangular
//! substitution whose [`normalize`](crate::Subst::normalize) is exactly such
//! an mgu, and whose domain ∪ range only mentions variables of the two input
//! terms (relevance).

use std::fmt;

use crate::subst::Subst;
use crate::symbol::Sym;
use crate::term::{Term, Var};

/// Whether unification performs the occurs check.
///
/// The type system always unifies with the occurs check enabled (type terms
/// must stay finite); the SLD engine does too by default, trading a little
/// speed for soundness, but can be configured for benchmark comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OccursCheck {
    /// Reject bindings `v ↦ t` when `v` occurs in `t` (sound).
    #[default]
    Enabled,
    /// Skip the check (classic Prolog behaviour; unsound on cyclic data).
    Disabled,
}

/// Unification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifyError {
    /// Two applications had different outermost symbols or arities.
    Clash {
        /// Outermost symbol of the left term.
        left: Sym,
        /// Outermost symbol of the right term.
        right: Sym,
    },
    /// Binding a variable to a term containing it.
    OccursCheck {
        /// The variable that would become cyclic.
        var: Var,
    },
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Clash { .. } => write!(f, "symbol clash"),
            UnifyError::OccursCheck { var } => write!(f, "occurs check failed on _{}", var.0),
        }
    }
}

impl std::error::Error for UnifyError {}

/// Unifies `t1` and `t2` under the bindings already in `subst`, extending
/// `subst` with the new bindings on success. Equivalent to solving
/// `t1 σ = t2 σ` where `σ` is the incoming substitution.
///
/// On failure `subst` may contain partial bindings; callers that need
/// transactional behaviour should clone first (the engine does).
///
/// # Errors
///
/// [`UnifyError::Clash`] on constructor mismatch, [`UnifyError::OccursCheck`]
/// on a cyclic binding.
pub fn unify(t1: &Term, t2: &Term, subst: &mut Subst) -> Result<(), UnifyError> {
    unify_with(t1, t2, subst, OccursCheck::Enabled)
}

/// [`unify`] with an explicit occurs-check mode.
///
/// # Errors
///
/// As for [`unify`]; `OccursCheck::Disabled` never reports
/// [`UnifyError::OccursCheck`].
pub fn unify_with(
    t1: &Term,
    t2: &Term,
    subst: &mut Subst,
    occurs: OccursCheck,
) -> Result<(), UnifyError> {
    // Explicit work stack avoids deep recursion on large terms.
    let mut work: Vec<(Term, Term)> = vec![(t1.clone(), t2.clone())];
    while let Some((a, b)) = work.pop() {
        let a = subst.walk(&a).clone();
        let b = subst.walk(&b).clone();
        match (a, b) {
            (Term::Var(v), Term::Var(w)) if v == w => {}
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if occurs == OccursCheck::Enabled && occurs_in(v, &t, subst) {
                    return Err(UnifyError::OccursCheck { var: v });
                }
                subst.bind(v, t);
            }
            (Term::App(f, fa), Term::App(g, ga)) => {
                if f != g || fa.len() != ga.len() {
                    return Err(UnifyError::Clash { left: f, right: g });
                }
                for (x, y) in fa.into_iter().zip(ga) {
                    work.push((x, y));
                }
            }
        }
    }
    Ok(())
}

/// Whether `v` occurs in `t` under the bindings of `subst`.
fn occurs_in(v: Var, t: &Term, subst: &Subst) -> bool {
    match subst.walk(t) {
        Term::Var(w) => *w == v,
        Term::App(_, args) => args.iter().any(|a| occurs_in(v, a, subst)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Signature, SymKind};

    struct Fx {
        f: Sym,
        g: Sym,
        a: Sym,
        b: Sym,
    }

    fn fx() -> Fx {
        let mut sig = Signature::new();
        Fx {
            f: sig.declare("f", SymKind::Func).unwrap(),
            g: sig.declare("g", SymKind::Func).unwrap(),
            a: sig.declare("a", SymKind::Func).unwrap(),
            b: sig.declare("b", SymKind::Func).unwrap(),
        }
    }

    fn v(n: u32) -> Term {
        Term::Var(Var(n))
    }

    #[test]
    fn unifies_var_with_term() {
        let x = fx();
        let mut s = Subst::new();
        unify(&v(0), &Term::constant(x.a), &mut s).unwrap();
        assert_eq!(s.resolve(&v(0)), Term::constant(x.a));
    }

    #[test]
    fn clash_on_different_symbols() {
        let x = fx();
        let mut s = Subst::new();
        let err = unify(&Term::constant(x.a), &Term::constant(x.b), &mut s).unwrap_err();
        assert!(matches!(err, UnifyError::Clash { .. }));
    }

    #[test]
    fn decomposes_applications() {
        let x = fx();
        let mut s = Subst::new();
        // f(X, a) = f(b, Y)
        let t1 = Term::app(x.f, vec![v(0), Term::constant(x.a)]);
        let t2 = Term::app(x.f, vec![Term::constant(x.b), v(1)]);
        unify(&t1, &t2, &mut s).unwrap();
        assert_eq!(s.resolve(&v(0)), Term::constant(x.b));
        assert_eq!(s.resolve(&v(1)), Term::constant(x.a));
    }

    #[test]
    fn occurs_check_rejects_cycle() {
        let x = fx();
        let mut s = Subst::new();
        let t = Term::app(x.f, vec![v(0)]);
        let err = unify(&v(0), &t, &mut s).unwrap_err();
        assert_eq!(err, UnifyError::OccursCheck { var: Var(0) });
    }

    #[test]
    fn occurs_check_disabled_binds_cycle() {
        let x = fx();
        let mut s = Subst::new();
        let t = Term::app(x.f, vec![v(0)]);
        unify_with(&v(0), &t, &mut s, OccursCheck::Disabled).unwrap();
        assert!(s.binds(Var(0)));
    }

    #[test]
    fn transitive_bindings_through_shared_vars() {
        let x = fx();
        let mut s = Subst::new();
        // f(X, X) = f(Y, a)  =>  X = Y = a
        let t1 = Term::app(x.f, vec![v(0), v(0)]);
        let t2 = Term::app(x.f, vec![v(1), Term::constant(x.a)]);
        unify(&t1, &t2, &mut s).unwrap();
        assert_eq!(s.resolve(&v(0)), Term::constant(x.a));
        assert_eq!(s.resolve(&v(1)), Term::constant(x.a));
    }

    #[test]
    fn deep_occurs_through_bindings() {
        let x = fx();
        let mut s = Subst::new();
        // X = g(Y), then Y = f(X) must fail the occurs check.
        unify(&v(0), &Term::app(x.g, vec![v(1)]), &mut s).unwrap();
        let err = unify(&v(1), &Term::app(x.f, vec![v(0)]), &mut s).unwrap_err();
        assert!(matches!(err, UnifyError::OccursCheck { .. }));
    }

    #[test]
    fn arity_mismatch_clashes() {
        let x = fx();
        let mut s = Subst::new();
        let t1 = Term::app(x.f, vec![v(0)]);
        let t2 = Term::app(x.f, vec![v(0), v(1)]);
        assert!(unify(&t1, &t2, &mut s).is_err());
    }

    #[test]
    fn mgu_is_most_general_for_simple_case() {
        let x = fx();
        // f(X, Y) = f(Y, Z): mgu should rename rather than instantiate to
        // ground terms; all three variables end up in one class.
        let t1 = Term::app(x.f, vec![v(0), v(1)]);
        let t2 = Term::app(x.f, vec![v(1), v(2)]);
        let mut s = Subst::new();
        unify(&t1, &t2, &mut s).unwrap();
        let r0 = s.resolve(&v(0));
        let r1 = s.resolve(&v(1));
        let r2 = s.resolve(&v(2));
        assert_eq!(r0, r1);
        assert_eq!(r1, r2);
        assert!(r0.is_var());
    }
}
