//! Fresh-variable generation and consistent renaming.
//!
//! SLD resolution requires each program clause to be renamed apart from the
//! current goal before resolving (standardization apart); the type checker
//! similarly needs fresh copies of predicate types for each body atom (the
//! `η_i` of Definition 16 act on fresh copies). Both use [`VarGen`].

use std::collections::HashMap;

use crate::term::{Term, Var};

/// A generator of fresh variables.
///
/// All components that may introduce variables into the same namespace must
/// share one `VarGen` (or seed later ones past the earlier ones' watermark).
#[derive(Debug, Clone, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator starting at variable 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose first fresh variable is `next`.
    pub fn starting_at(next: u32) -> Self {
        VarGen { next }
    }

    /// Returns a fresh, never-before-returned variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        v
    }

    /// The watermark: all variables below this index have been handed out.
    pub fn watermark(&self) -> u32 {
        self.next
    }

    /// Advances the watermark past `v` so it will never be handed out.
    pub fn reserve(&mut self, v: Var) {
        if v.0 >= self.next {
            self.next = v.0 + 1;
        }
    }
}

/// Renames the variables of `t` consistently: every distinct variable maps to
/// a fresh one from `gen`, recorded in `map` (shared occurrences stay shared).
///
/// Passing the same `map` to several calls renames a group of terms (e.g. the
/// head and body of one clause) apart *together*.
pub fn rename_term(t: &Term, gen: &mut VarGen, map: &mut HashMap<Var, Var>) -> Term {
    t.map_vars(&mut |v| {
        let w = *map.entry(v).or_insert_with(|| gen.fresh());
        Term::Var(w)
    })
}

/// Renames a slice of terms apart together, sharing one renaming map.
pub fn rename_all(ts: &[Term], gen: &mut VarGen) -> Vec<Term> {
    let mut map = HashMap::new();
    ts.iter().map(|t| rename_term(t, gen, &mut map)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Signature, SymKind};

    #[test]
    fn fresh_is_monotone() {
        let mut g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(b.0 > a.0);
        assert_eq!(g.watermark(), 2);
    }

    #[test]
    fn reserve_skips_past() {
        let mut g = VarGen::new();
        g.reserve(Var(10));
        assert_eq!(g.fresh(), Var(11));
        g.reserve(Var(3)); // no-op, already past
        assert_eq!(g.fresh(), Var(12));
    }

    #[test]
    fn rename_preserves_sharing() {
        let mut sig = Signature::new();
        let f = sig.declare("f", SymKind::Func).unwrap();
        let t = Term::app(
            f,
            vec![Term::Var(Var(0)), Term::Var(Var(0)), Term::Var(Var(1))],
        );
        let mut g = VarGen::starting_at(100);
        let mut map = HashMap::new();
        let r = rename_term(&t, &mut g, &mut map);
        match r {
            Term::App(_, args) => {
                assert_eq!(args[0], args[1]);
                assert_ne!(args[0], args[2]);
                assert!(matches!(args[0], Term::Var(Var(n)) if n >= 100));
            }
            _ => panic!("expected application"),
        }
    }

    #[test]
    fn rename_all_shares_across_terms() {
        let mut sig = Signature::new();
        let f = sig.declare("f", SymKind::Func).unwrap();
        let t1 = Term::app(f, vec![Term::Var(Var(0))]);
        let t2 = Term::app(f, vec![Term::Var(Var(0))]);
        let mut g = VarGen::starting_at(50);
        let rs = rename_all(&[t1, t2], &mut g);
        assert_eq!(rs[0], rs[1]);
    }
}
