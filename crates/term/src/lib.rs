//! First-order term substrate for the `subtype-lp` workspace.
//!
//! This crate provides the basic syntactic machinery that the paper
//! *Type Declarations as Subtype Constraints in Logic Programming*
//! (Jacobs, PLDI 1990) assumes as given:
//!
//! * disjoint sets of **variables** `V`, **function symbols** `F`,
//!   **type constructors** `T` and **predicate symbols** `P`, each symbol
//!   with a fixed arity — see [`Signature`] and [`SymKind`];
//! * **terms** over a set of symbols (Definition 1 of the paper uses terms
//!   over `F ∪ T` as *types*; program atoms are terms whose outermost symbol
//!   is a predicate) — see [`Term`];
//! * **substitutions** and their application and composition — see [`Subst`];
//! * **most general unification** with occurs check — see [`unify`];
//! * fresh-variable generation and term renaming — see [`VarGen`].
//!
//! In addition it provides **skolem symbols** ([`SymKind::Skolem`]), used by
//! the type system to implement the paper's "bar" operation `τ̄` (replace
//! each variable by a unique constant not appearing in any type).
//!
//! # Example
//!
//! ```
//! use lp_term::{Signature, SymKind, Term, unify, Subst};
//!
//! let mut sig = Signature::new();
//! let cons = sig.declare("cons", SymKind::Func).unwrap();
//! let nil = sig.declare("nil", SymKind::Func).unwrap();
//!
//! let mut gen = lp_term::VarGen::new();
//! let x = gen.fresh();
//! // cons(X, nil)
//! let t1 = Term::app(cons, vec![Term::Var(x), Term::constant(nil)]);
//! // cons(nil, nil)
//! let t2 = Term::app(cons, vec![Term::constant(nil), Term::constant(nil)]);
//!
//! let mut subst = Subst::new();
//! unify(&t1, &t2, &mut subst).unwrap();
//! assert_eq!(subst.resolve(&Term::Var(x)), Term::constant(nil));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod display;
mod rename;
mod subst;
mod symbol;
mod term;
mod unify;

pub use display::{NameHints, TermDisplay};
pub use rename::{rename_all, rename_term, VarGen};
pub use subst::Subst;
pub use symbol::{Interner, SigError, Signature, Sym, SymKind};
pub use term::{Term, Var};
pub use unify::{unify, unify_with, OccursCheck, UnifyError};
