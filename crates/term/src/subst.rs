//! Substitutions: finite maps from variables to terms.
//!
//! Unification builds *triangular* substitutions (a binding's right-hand side
//! may mention variables bound elsewhere in the same substitution), so
//! [`Subst::resolve`] chases bindings recursively. The occurs check performed
//! during unification guarantees this terminates. [`Subst::normalize`] turns a
//! triangular substitution into the equivalent idempotent one — the form the
//! paper assumes for most general unifiers ("we assume that most general
//! unifiers are idempotent and relevant").

use std::collections::HashMap;

use crate::term::{Term, Var};

/// A substitution `θ`: a finite map from variables to terms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Subst {
    map: HashMap<Var, Term>,
}

impl Subst {
    /// Creates the empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a substitution from explicit bindings.
    ///
    /// Later bindings for the same variable overwrite earlier ones.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Var, Term)>) -> Self {
        Subst {
            map: bindings.into_iter().collect(),
        }
    }

    /// Binds `v` to `t`, replacing any previous binding.
    pub fn bind(&mut self, v: Var, t: Term) {
        self.map.insert(v, t);
    }

    /// The binding for `v`, if any (no chasing).
    pub fn get(&self, v: Var) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Whether `v` is bound.
    pub fn binds(&self, v: Var) -> bool {
        self.map.contains_key(&v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the raw bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }

    /// The domain of the substitution, sorted.
    pub fn domain(&self) -> Vec<Var> {
        let mut d: Vec<_> = self.map.keys().copied().collect();
        d.sort();
        d
    }

    /// Walks a *variable* to its final representative: follows bindings while
    /// they lead to variables, returning the last term reached (which may
    /// still be an unresolved application containing bound variables).
    ///
    /// # Panics
    ///
    /// Panics after a million hops, which can only mean a cyclic binding
    /// chain (e.g. built by unchecked [`Subst::bind`] calls on variables
    /// that were not standardized apart). A loud panic here beats the
    /// silent infinite loop it replaces.
    pub fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        let mut hops = 0usize;
        while let Term::Var(v) = t {
            match self.map.get(v) {
                Some(next) => {
                    t = next;
                    hops += 1;
                    assert!(hops <= 1_000_000, "cyclic substitution chain at {v:?}");
                }
                None => break,
            }
        }
        t
    }

    /// Applies the substitution fully: every bound variable in `t` is
    /// replaced, recursively, by its resolved binding.
    ///
    /// # Panics
    ///
    /// Does not terminate if the substitution is cyclic; substitutions built
    /// by [`unify`](crate::unify) are acyclic thanks to the occurs check.
    pub fn resolve(&self, t: &Term) -> Term {
        match self.walk(t) {
            Term::Var(v) => Term::Var(*v),
            Term::App(s, args) => Term::App(*s, args.iter().map(|a| self.resolve(a)).collect()),
        }
    }

    /// Converts to an equivalent idempotent substitution: every right-hand
    /// side is fully resolved, and identity bindings `v ↦ v` are dropped.
    pub fn normalize(&self) -> Subst {
        let mut out = HashMap::with_capacity(self.map.len());
        for (&v, t) in &self.map {
            let r = self.resolve(t);
            if r != Term::Var(v) {
                out.insert(v, r);
            }
        }
        Subst { map: out }
    }

    /// Restricts the substitution to the given variables (after resolving).
    pub fn restrict(&self, vars: impl IntoIterator<Item = Var>) -> Subst {
        let mut out = HashMap::new();
        for v in vars {
            if self.binds(v) {
                out.insert(v, self.resolve(&Term::Var(v)));
            }
        }
        Subst { map: out }
    }

    /// Composition `self ∘ other` in application order: applying the result
    /// is the same as applying `self` first, then `other`.
    ///
    /// That is, `(self.compose(other)).resolve(t) ==
    /// other.resolve(&self.resolve(t))` for substitutions whose composite is
    /// acyclic.
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut out = HashMap::new();
        for (&v, t) in &self.map {
            let r = other.resolve(t);
            if r != Term::Var(v) {
                out.insert(v, r);
            }
        }
        for (&v, t) in &other.map {
            out.entry(v).or_insert_with(|| t.clone());
        }
        Subst { map: out }
    }

    /// Whether the substitution is a variable renaming (injective map to
    /// distinct variables).
    pub fn is_renaming(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.map.values().all(|t| match self.walk(t) {
            Term::Var(v) => seen.insert(*v),
            _ => false,
        })
    }
}

impl FromIterator<(Var, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Subst::from_bindings(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Signature, SymKind};

    fn sig3() -> (Signature, crate::Sym, crate::Sym, crate::Sym) {
        let mut sig = Signature::new();
        let f = sig.declare("f", SymKind::Func).unwrap();
        let a = sig.declare("a", SymKind::Func).unwrap();
        let b = sig.declare("b", SymKind::Func).unwrap();
        (sig, f, a, b)
    }

    #[test]
    fn resolve_chases_chains() {
        let (_s, _f, a, _b) = sig3();
        let mut th = Subst::new();
        th.bind(Var(0), Term::Var(Var(1)));
        th.bind(Var(1), Term::constant(a));
        assert_eq!(th.resolve(&Term::Var(Var(0))), Term::constant(a));
    }

    #[test]
    fn resolve_descends_into_applications() {
        let (_s, f, a, _b) = sig3();
        let mut th = Subst::new();
        th.bind(Var(0), Term::app(f, vec![Term::Var(Var(1))]));
        th.bind(Var(1), Term::constant(a));
        assert_eq!(
            th.resolve(&Term::Var(Var(0))),
            Term::app(f, vec![Term::constant(a)])
        );
    }

    #[test]
    fn normalize_produces_idempotent() {
        let (_s, f, a, _b) = sig3();
        let mut th = Subst::new();
        th.bind(Var(0), Term::app(f, vec![Term::Var(Var(1))]));
        th.bind(Var(1), Term::constant(a));
        let n = th.normalize();
        // Idempotent: resolving twice equals resolving once.
        let t = Term::Var(Var(0));
        assert_eq!(n.resolve(&n.resolve(&t)), n.resolve(&t));
        assert_eq!(n.get(Var(0)), Some(&Term::app(f, vec![Term::constant(a)])));
    }

    #[test]
    fn compose_order_is_apply_self_then_other() {
        let (_s, _f, a, b) = sig3();
        // self: X ↦ Y ; other: Y ↦ a, X ↦ b.
        let s1 = Subst::from_bindings([(Var(0), Term::Var(Var(1)))]);
        let s2 = Subst::from_bindings([(Var(1), Term::constant(a)), (Var(0), Term::constant(b))]);
        let c = s1.compose(&s2);
        // X goes through Y to a (s1 first), not to b.
        assert_eq!(c.resolve(&Term::Var(Var(0))), Term::constant(a));
        assert_eq!(c.resolve(&Term::Var(Var(1))), Term::constant(a));
    }

    #[test]
    fn restrict_keeps_only_requested() {
        let (_s, _f, a, b) = sig3();
        let th = Subst::from_bindings([(Var(0), Term::constant(a)), (Var(1), Term::constant(b))]);
        let r = th.restrict([Var(0), Var(5)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(Var(0)), Some(&Term::constant(a)));
        assert!(!r.binds(Var(1)));
    }

    #[test]
    fn renaming_detection() {
        let (_s, _f, a, _b) = sig3();
        let ren = Subst::from_bindings([(Var(0), Term::Var(Var(5))), (Var(1), Term::Var(Var(6)))]);
        assert!(ren.is_renaming());
        let not_inj =
            Subst::from_bindings([(Var(0), Term::Var(Var(5))), (Var(1), Term::Var(Var(5)))]);
        assert!(!not_inj.is_renaming());
        let to_const = Subst::from_bindings([(Var(0), Term::constant(a))]);
        assert!(!to_const.is_renaming());
    }
}
