//! Interned symbols and signatures.
//!
//! The paper assumes disjoint sets of function symbols `F`, type constructor
//! symbols `T` and predicate symbols `P`, each with a fixed arity. A
//! [`Signature`] enforces exactly that: every symbol is declared with a
//! [`SymKind`], and its arity is pinned on first use (the paper's concrete
//! syntax — `FUNC succ.` — does not state arities, so they are inferred).

use std::collections::HashMap;
use std::fmt;

/// A compact handle to an interned symbol.
///
/// Symbols are cheap to copy and compare; their name, kind and arity live in
/// the [`Signature`] that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw index of this symbol within its signature.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol handle from a raw index previously obtained via
    /// [`Sym::index`] — the inverse used when symbols round-trip through flat
    /// encodings (e.g. canonical proof-table key codes). The caller must only
    /// feed back indices of symbols that exist in the signature the encoding
    /// was built against; the handle itself carries no validity check.
    pub fn from_index(index: usize) -> Sym {
        Sym(index as u32)
    }
}

/// The syntactic class a symbol belongs to.
///
/// The paper keeps `V`, `F`, `T` (and later `P`) disjoint; `Skolem` is an
/// implementation-level fourth class used for the bar operation `τ̄`
/// (Definition 5): skolem constants are "unique constants not appearing in
/// any type", so no subtype constraint and no substitution axiom other than
/// the degenerate `sk >= sk` ever applies to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymKind {
    /// A function symbol (element of `F`). Doubles as a type constructor with
    /// fixed interpretation: `f(τ₁…τₙ)` is the type of terms `f(t₁…tₙ)` with
    /// `tᵢ : τᵢ`.
    Func,
    /// A declared type constructor (element of `T`), defined by subtype
    /// constraints.
    TypeCtor,
    /// A predicate symbol (element of `P`).
    Pred,
    /// A skolem constant produced by freezing a variable (`τ̄`).
    Skolem,
}

impl fmt::Display for SymKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SymKind::Func => "function symbol",
            SymKind::TypeCtor => "type constructor",
            SymKind::Pred => "predicate symbol",
            SymKind::Skolem => "skolem constant",
        };
        f.write_str(s)
    }
}

/// Errors produced while declaring or using symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigError {
    /// The name was already declared with a different kind.
    KindClash {
        /// The symbol's name.
        name: String,
        /// The kind it was first declared with.
        declared: SymKind,
        /// The kind the caller now requested.
        requested: SymKind,
    },
    /// The symbol was already used with a different arity.
    ArityClash {
        /// The symbol's name.
        name: String,
        /// The arity it was first used with.
        fixed: usize,
        /// The arity the caller now requested.
        requested: usize,
    },
}

impl fmt::Display for SigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigError::KindClash {
                name,
                declared,
                requested,
            } => write!(
                f,
                "symbol `{name}` was declared as a {declared} but is used as a {requested}"
            ),
            SigError::ArityClash {
                name,
                fixed,
                requested,
            } => write!(
                f,
                "symbol `{name}` has arity {fixed} but is used with {requested} argument(s)"
            ),
        }
    }
}

impl std::error::Error for SigError {}

#[derive(Debug, Clone)]
struct SymData {
    name: Box<str>,
    kind: SymKind,
    /// Fixed on first use; `None` until then.
    arity: Option<usize>,
}

/// A plain string interner, independent of symbol kinds.
///
/// [`Signature`] builds on this; the interner is also usable on its own for
/// auxiliary name tables (e.g. variable names in a parsed clause).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning a stable index.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.map.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.into());
        self.map.insert(s.into(), i);
        i
    }

    /// Returns the string for `index`, if it was interned.
    pub fn get(&self, index: u32) -> Option<&str> {
        self.strings.get(index as usize).map(|s| &**s)
    }

    /// Returns the index of `s` if it has been interned before.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// The symbol table: names, kinds and arities for every symbol in play.
///
/// A signature enforces the paper's well-formedness conditions at the
/// syntactic level:
///
/// * `F`, `T` and `P` are disjoint ([`SigError::KindClash`]);
/// * every symbol has one fixed arity ([`SigError::ArityClash`]), pinned the
///   first time the symbol is applied to arguments (or eagerly via
///   [`Signature::declare_with_arity`]).
#[derive(Debug, Clone, Default)]
pub struct Signature {
    syms: Vec<SymData>,
    by_name: HashMap<Box<str>, Sym>,
    skolem_count: u32,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-finds) a symbol named `name` of kind `kind`.
    ///
    /// Declaring the same name twice with the same kind is idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::KindClash`] if `name` already exists with a
    /// different kind.
    pub fn declare(&mut self, name: &str, kind: SymKind) -> Result<Sym, SigError> {
        if let Some(&sym) = self.by_name.get(name) {
            let data = &self.syms[sym.index()];
            if data.kind != kind {
                return Err(SigError::KindClash {
                    name: name.to_string(),
                    declared: data.kind,
                    requested: kind,
                });
            }
            return Ok(sym);
        }
        let sym = Sym(self.syms.len() as u32);
        self.syms.push(SymData {
            name: name.into(),
            kind,
            arity: None,
        });
        self.by_name.insert(name.into(), sym);
        Ok(sym)
    }

    /// Declares a symbol and pins its arity immediately.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::KindClash`] or [`SigError::ArityClash`] on
    /// conflicting re-declaration.
    pub fn declare_with_arity(
        &mut self,
        name: &str,
        kind: SymKind,
        arity: usize,
    ) -> Result<Sym, SigError> {
        let sym = self.declare(name, kind)?;
        self.fix_arity(sym, arity)?;
        Ok(sym)
    }

    /// Creates a fresh skolem constant (arity 0) with a unique, unparseable
    /// name of the form `$sk<n>`.
    pub fn fresh_skolem(&mut self) -> Sym {
        loop {
            let name = format!("$sk{}", self.skolem_count);
            self.skolem_count += 1;
            if self.by_name.contains_key(name.as_str()) {
                continue;
            }
            let sym = Sym(self.syms.len() as u32);
            self.syms.push(SymData {
                name: name.clone().into_boxed_str(),
                kind: SymKind::Skolem,
                arity: Some(0),
            });
            self.by_name.insert(name.into_boxed_str(), sym);
            return sym;
        }
    }

    /// Looks up a symbol by name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// The name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` does not belong to this signature.
    pub fn name(&self, sym: Sym) -> &str {
        &self.syms[sym.index()].name
    }

    /// The kind of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` does not belong to this signature.
    pub fn kind(&self, sym: Sym) -> SymKind {
        self.syms[sym.index()].kind
    }

    /// The arity of `sym`, if it has been fixed yet.
    pub fn arity(&self, sym: Sym) -> Option<usize> {
        self.syms[sym.index()].arity
    }

    /// Pins the arity of `sym`, or checks it against the pinned value.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::ArityClash`] if `sym` was already used with a
    /// different arity.
    pub fn fix_arity(&mut self, sym: Sym, arity: usize) -> Result<(), SigError> {
        let data = &mut self.syms[sym.index()];
        match data.arity {
            None => {
                data.arity = Some(arity);
                Ok(())
            }
            Some(fixed) if fixed == arity => Ok(()),
            Some(fixed) => Err(SigError::ArityClash {
                name: data.name.to_string(),
                fixed,
                requested: arity,
            }),
        }
    }

    /// Iterates over all symbols of a given kind.
    pub fn symbols_of_kind(&self, kind: SymKind) -> impl Iterator<Item = Sym> + '_ {
        self.syms
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.kind == kind)
            .map(|(i, _)| Sym(i as u32))
    }

    /// Iterates over all symbols in declaration order.
    pub fn symbols(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.syms.len()).map(|i| Sym(i as u32))
    }

    /// Total number of symbols (including skolems).
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether no symbol has been declared.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_is_idempotent() {
        let mut sig = Signature::new();
        let a = sig.declare("succ", SymKind::Func).unwrap();
        let b = sig.declare("succ", SymKind::Func).unwrap();
        assert_eq!(a, b);
        assert_eq!(sig.name(a), "succ");
        assert_eq!(sig.kind(a), SymKind::Func);
    }

    #[test]
    fn kind_clash_is_rejected() {
        let mut sig = Signature::new();
        sig.declare("list", SymKind::TypeCtor).unwrap();
        let err = sig.declare("list", SymKind::Func).unwrap_err();
        assert!(matches!(err, SigError::KindClash { .. }));
        assert!(err.to_string().contains("list"));
    }

    #[test]
    fn arity_pins_on_first_use() {
        let mut sig = Signature::new();
        let s = sig.declare("cons", SymKind::Func).unwrap();
        assert_eq!(sig.arity(s), None);
        sig.fix_arity(s, 2).unwrap();
        sig.fix_arity(s, 2).unwrap();
        let err = sig.fix_arity(s, 3).unwrap_err();
        assert!(matches!(
            err,
            SigError::ArityClash {
                fixed: 2,
                requested: 3,
                ..
            }
        ));
    }

    #[test]
    fn skolems_are_unique_and_zero_ary() {
        let mut sig = Signature::new();
        let a = sig.fresh_skolem();
        let b = sig.fresh_skolem();
        assert_ne!(a, b);
        assert_eq!(sig.kind(a), SymKind::Skolem);
        assert_eq!(sig.arity(a), Some(0));
        assert_ne!(sig.name(a), sig.name(b));
    }

    #[test]
    fn symbols_of_kind_filters() {
        let mut sig = Signature::new();
        sig.declare("nil", SymKind::Func).unwrap();
        sig.declare("list", SymKind::TypeCtor).unwrap();
        sig.declare("app", SymKind::Pred).unwrap();
        sig.declare("cons", SymKind::Func).unwrap();
        let funcs: Vec<_> = sig
            .symbols_of_kind(SymKind::Func)
            .map(|s| sig.name(s).to_string())
            .collect();
        assert_eq!(funcs, vec!["nil", "cons"]);
    }

    #[test]
    fn interner_roundtrip() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        let a2 = i.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.get(a), Some("foo"));
        assert_eq!(i.lookup("bar"), Some(b));
        assert_eq!(i.lookup("baz"), None);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }
}
