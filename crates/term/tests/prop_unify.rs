//! Property-based tests for unification and substitutions.

use proptest::prelude::*;

use lp_term::{rename_term, unify, Signature, Subst, Sym, SymKind, Term, Var, VarGen};

fn sig3() -> (Signature, Vec<Sym>) {
    let mut sig = Signature::new();
    let syms = vec![
        sig.declare_with_arity("a", SymKind::Func, 0).unwrap(),
        sig.declare_with_arity("b", SymKind::Func, 0).unwrap(),
        sig.declare_with_arity("f", SymKind::Func, 1).unwrap(),
        sig.declare_with_arity("g", SymKind::Func, 2).unwrap(),
    ];
    (sig, syms)
}

/// A strategy for terms over {a, b, f/1, g/2} and 4 variables.
fn term_strategy() -> impl Strategy<Value = Term> {
    let (_sig, syms) = sig3();
    let a = syms[0];
    let b = syms[1];
    let f = syms[2];
    let g = syms[3];
    let leaf = prop_oneof![
        (0u32..4).prop_map(|v| Term::Var(Var(v))),
        Just(Term::constant(a)),
        Just(Term::constant(b)),
    ];
    leaf.prop_recursive(4, 32, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(move |t| Term::app(f, vec![t])),
            (inner.clone(), inner).prop_map(move |(t, u)| Term::app(g, vec![t, u])),
        ]
    })
}

proptest! {
    #[test]
    fn unify_with_self_is_trivial(t in term_strategy()) {
        let mut s = Subst::new();
        prop_assert!(unify(&t, &t, &mut s).is_ok());
        // No variable of t ends up bound to anything but itself.
        prop_assert_eq!(s.normalize().resolve(&t), t);
    }

    #[test]
    fn mgu_is_a_unifier(t1 in term_strategy(), t2 in term_strategy()) {
        let mut s = Subst::new();
        if unify(&t1, &t2, &mut s).is_ok() {
            prop_assert_eq!(s.resolve(&t1), s.resolve(&t2));
        }
    }

    #[test]
    fn unification_is_symmetric(t1 in term_strategy(), t2 in term_strategy()) {
        let mut s12 = Subst::new();
        let mut s21 = Subst::new();
        let r12 = unify(&t1, &t2, &mut s12).is_ok();
        let r21 = unify(&t2, &t1, &mut s21).is_ok();
        prop_assert_eq!(r12, r21);
        if r12 {
            // Both mgus unify both terms.
            prop_assert_eq!(s21.resolve(&t1), s21.resolve(&t2));
        }
    }

    #[test]
    fn unifiers_survive_renaming(t1 in term_strategy(), t2 in term_strategy()) {
        // Renaming both terms apart consistently preserves unifiability.
        let mut s = Subst::new();
        let unifiable = unify(&t1, &t2, &mut s).is_ok();
        let mut gen = VarGen::starting_at(100);
        let mut map = std::collections::HashMap::new();
        let r1 = rename_term(&t1, &mut gen, &mut map);
        let r2 = rename_term(&t2, &mut gen, &mut map);
        let mut s2 = Subst::new();
        prop_assert_eq!(unify(&r1, &r2, &mut s2).is_ok(), unifiable);
    }

    #[test]
    fn ground_unification_is_equality(t1 in term_strategy(), t2 in term_strategy()) {
        if t1.is_ground() && t2.is_ground() {
            let mut s = Subst::new();
            prop_assert_eq!(unify(&t1, &t2, &mut s).is_ok(), t1 == t2);
            prop_assert!(s.is_empty() || t1 == t2);
        }
    }

    #[test]
    fn normalize_is_idempotent_substitution(t1 in term_strategy(), t2 in term_strategy()) {
        let mut s = Subst::new();
        if unify(&t1, &t2, &mut s).is_ok() {
            let n = s.normalize();
            for (v, _) in n.iter() {
                let once = n.resolve(&Term::Var(v));
                let twice = n.resolve(&once);
                prop_assert_eq!(once, twice);
            }
        }
    }

    #[test]
    fn resolve_and_map_vars_agree(t in term_strategy()) {
        // For a substitution to ground terms, resolve == map_vars.
        let (_sig, syms) = sig3();
        let a = Term::constant(syms[0]);
        let s = Subst::from_bindings((0..4).map(|v| (Var(v), a.clone())));
        let via_resolve = s.resolve(&t);
        let via_map = t.map_vars(&mut |v| s.get(v).cloned().unwrap_or(Term::Var(v)));
        prop_assert_eq!(via_resolve, via_map);
        prop_assert!(s.resolve(&t).is_ground());
    }

    #[test]
    fn size_and_depth_monotone_under_substitution(t in term_strategy()) {
        let (_sig, syms) = sig3();
        let f = syms[2];
        let bigger = Term::app(f, vec![Term::constant(syms[0])]);
        let s = Subst::from_bindings((0..4).map(|v| (Var(v), bigger.clone())));
        let r = s.resolve(&t);
        prop_assert!(r.size() >= t.size());
        prop_assert!(r.depth() >= t.depth());
    }
}
