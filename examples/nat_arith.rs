//! Subtypes and information flow (paper §7): why `:- p(X), q(X).` with
//! `PRED p(nat). PRED q(int).` is rejected, and how the paper's `int2nat`
//! *filtering* predicate recovers the query — plus typed Peano arithmetic
//! exercising nat/unnat/int subtyping.
//!
//! Run with: `cargo run --example nat_arith`

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::term::Term;
use subtype_lp::TypedProgram;

const DECLS: &str = "
    FUNC 0, succ, pred.
    TYPE nat, unnat, int.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The §7 problem -------------------------------------------------
    // p produces nats, q consumes ints. Information may flow both ways in
    // logic programming, so the aliased query is rejected outright.
    let rejected = format!(
        "{DECLS}
         PRED p(nat).
         PRED q(int).
         p(0).
         q(0).
         :- p(X), q(X).
        "
    );
    let program = TypedProgram::from_source(&rejected)?;
    program.check_clauses()?;
    let err = program.check_queries().expect_err("the paper rejects this");
    println!("rejected :- p(X), q(X).   [p: nat, q: int]\n  {err}");

    // ---- The §7 solution: filtering through int2nat ---------------------
    let filtered = format!(
        "{DECLS}
         PRED p(nat).
         PRED q(int).
         PRED int2nat(int, nat).
         int2nat(0, 0).
         int2nat(succ(X), succ(X)).
         p(succ(0)).
         q(succ(0)).
         q(pred(0)).
         :- p(X), int2nat(Y, X), q(Y).
        "
    );
    let program = TypedProgram::from_source(&filtered)?;
    program.check_all()?;
    println!("\naccepted :- p(X), int2nat(Y, X), q(Y).");
    let report = program.audit_query(0, AuditConfig::default());
    assert!(report.is_clean());
    let q = &program.module().queries[0];
    for sol in &report.solutions {
        for (v, name) in q.hints.iter() {
            let value = sol.answer.resolve(&Term::Var(v));
            println!("  {name} = {}", program.display_with(&value, &q.hints));
        }
    }
    println!(
        "  ({} resolvents audited, {} violations)",
        report.resolvents_checked,
        report.violations.len()
    );

    // The filter really filters: pred(0) is an int but not a nat, so
    // int2nat(Y, X) never produces it on the nat side.
    let filtering = format!(
        "{DECLS}
         PRED int2nat(int, nat).
         int2nat(0, 0).
         int2nat(succ(X), succ(X)).
         :- int2nat(pred(0), X).
        "
    );
    let program = TypedProgram::from_source(&filtering)?;
    // Note: this query is itself well-typed (pred(0) IS an int)…
    program.check_all()?;
    // …it simply has no solutions.
    let solutions = program.run_query(0, 10);
    println!(
        "\nint2nat(pred(0), X): {} solutions (filtered out)",
        solutions.len()
    );
    assert!(solutions.is_empty());

    // ---- Typed Peano addition over nat ----------------------------------
    let arith = format!(
        "{DECLS}
         PRED plus(nat, nat, nat).
         plus(0, N, N).
         plus(succ(M), N, succ(K)) :- plus(M, N, K).
         :- plus(succ(succ(0)), succ(0), K).
         :- plus(M, N, succ(succ(0))).
        "
    );
    let program = TypedProgram::from_source(&arith)?;
    program.check_all()?;
    println!("\n2 + 1:");
    let q0 = &program.module().queries[0];
    for sol in program.run_query(0, 1) {
        for (v, name) in q0.hints.iter() {
            let value = sol.answer.resolve(&Term::Var(v));
            println!("  {name} = {}", program.display_with(&value, &q0.hints));
        }
    }
    println!("all splits of 2:");
    let report = program.audit_query(1, AuditConfig::default());
    assert!(report.is_clean());
    println!(
        "  {} solutions, every resolvent well-typed",
        report.solutions.len()
    );

    // Subtyping lets nat evidence flow where ints are expected, but not the
    // reverse: storing pred(0) in plus would be rejected.
    let bad = format!(
        "{DECLS}
         PRED plus(nat, nat, nat).
         plus(0, N, N).
         plus(pred(0), N, N).
        "
    );
    let program = TypedProgram::from_source(&bad)?;
    let err = program.check_clauses().expect_err("pred(0) is not a nat");
    println!("\nrejected plus(pred(0), N, N).\n  {err}");
    Ok(())
}
