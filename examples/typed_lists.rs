//! A small typed list library: append, member, reverse and length, with
//! polymorphic `PRED` declarations — and a tour of what the type checker
//! accepts and rejects.
//!
//! Run with: `cargo run --example typed_lists`

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::term::Term;
use subtype_lp::TypedProgram;

const LIBRARY: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).

    PRED app(list(A), list(A), list(A)).
    app(nil, L, L).
    app(cons(X, L), M, cons(X, N)) :- app(L, M, N).

    PRED member(A, list(A)).
    member(X, cons(X, L)).
    member(X, cons(Y, L)) :- member(X, L).

    PRED rev(list(A), list(A)).
    rev(nil, nil).
    rev(cons(X, L), R) :- rev(L, T), app(T, cons(X, nil), R).

    PRED len(list(A), nat).
    len(nil, 0).
    len(cons(X, L), succ(N)) :- len(L, N).

    % Reverse a heterogeneous int list (both nats and unnats):
    :- rev(cons(0, cons(pred(0), cons(succ(0), nil))), R).
    % What are the members of [0, succ(0)]?
    :- member(X, cons(0, cons(succ(0), nil))).
    % Lengths are nats:
    :- len(cons(0, cons(0, cons(0, nil))), N).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = TypedProgram::from_source(LIBRARY)?;
    program.check_all()?;
    println!(
        "library is well-typed: {} clauses",
        program.module().clauses.len()
    );

    for (qi, query) in program.module().queries.iter().enumerate() {
        println!("\nquery #{qi}:");
        let report = program.audit_query(qi, AuditConfig::default());
        for sol in &report.solutions {
            let mut printed = false;
            for (v, name) in query.hints.iter() {
                let value = sol.answer.resolve(&Term::Var(v));
                if value != Term::Var(v) {
                    println!("  {name} = {}", program.display_with(&value, &query.hints));
                    printed = true;
                }
            }
            if !printed {
                println!("  yes.");
            }
        }
        assert!(report.is_clean(), "Theorem 6 must hold on every run");
        println!(
            "  ({} resolvents audited, all well-typed)",
            report.resolvents_checked
        );
    }

    // The checker rejects type-confused variants (§1: "this rules out
    // certain successful queries, such as :- app(nil, 0, 0).").
    for bad in [":- app(nil, 0, 0).", ":- member(X, 0).", ":- len(0, N)."] {
        let src = format!("{LIBRARY}\n{bad}");
        let p = TypedProgram::from_source(&src)?;
        match p.check_queries() {
            Err(e) => println!("\nrejected {bad}\n  {e}"),
            Ok(_) => unreachable!("{bad} must be rejected"),
        }
    }

    // A subtlety of the predefined union: a *polymorphic* predicate can be
    // invoked at a union type, so mixing element kinds in one list is fine —
    // η = {A ↦ nil + 0} makes this query well-typed (Definition 16):
    let src = format!("{LIBRARY}\n:- rev(cons(nil, cons(0, nil)), R).");
    let p = TypedProgram::from_source(&src)?;
    p.check_queries()?;
    println!("\naccepted :- rev(cons(nil, cons(0, nil)), R).  (via A = nil + 0)");
    Ok(())
}
