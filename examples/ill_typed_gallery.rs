//! A gallery of every rejection example in the paper (§1, §5, §7), with the
//! checker's diagnostics.
//!
//! Run with: `cargo run --example ill_typed_gallery`

use subtype_lp::TypedProgram;

const DECLS: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
";

struct Case {
    title: &'static str,
    paper: &'static str,
    source: String,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = vec![
        Case {
            title: "query at the wrong type",
            paper: "§1: \"this rules out certain successful queries, such as :- app(nil,0,0).\"",
            source: format!(
                "{DECLS}
                 PRED app(list(A), list(A), list(A)).
                 app(nil, L, L).
                 app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
                 :- app(nil, 0, 0)."
            ),
        },
        Case {
            title: "variable aliased across incompatible type contexts",
            paper: "§5: PRED p(int). PRED q(list(A)). the query :- p(X), q(X).",
            source: format!(
                "{DECLS}
                 PRED p(int).
                 PRED q(list(A)).
                 p(0).
                 q(nil).
                 :- p(X), q(X)."
            ),
        },
        Case {
            title: "clause body drags a variable into another type context",
            paper: "§5: PRED r(list(A)). r(X) :- p(X).",
            source: format!(
                "{DECLS}
                 PRED p(int).
                 PRED r(list(A)).
                 p(0).
                 r(X) :- p(X)."
            ),
        },
        Case {
            title: "repeated head variable at two types",
            paper: "§5: PRED s(int, list(A)). s(X, X).",
            source: format!(
                "{DECLS}
                 PRED s(int, list(A)).
                 s(X, X)."
            ),
        },
        Case {
            title: "defining clause commits the predicate's type variable",
            paper: "§5: PRED p(list(A)). the clause p(cons(nil, nil)). must be rejected",
            source: format!(
                "{DECLS}
                 PRED p(list(A)).
                 p(cons(nil, nil))."
            ),
        },
        Case {
            title: "subtype aliasing without a filter",
            paper: "§7: PRED p(nat). PRED q(int). information may flow from q back into p",
            source: format!(
                "{DECLS}
                 PRED p(nat).
                 PRED q(int).
                 p(0).
                 q(0).
                 :- p(X), q(X)."
            ),
        },
    ];

    // Unguarded/non-uniform declarations are rejected even earlier.
    let decl_cases = [
        ("§3: c >= c. is not guarded", "TYPE c. c >= c."),
        (
            "§3: c(A) >= c(f(A)). is not guarded",
            "FUNC f. TYPE c. c(A) >= c(f(A)).",
        ),
        (
            "§3: mutual recursion without a guard",
            "FUNC f. TYPE c, b. c(A) >= b(f(A)). b(B) >= c(f(B)).",
        ),
        (
            "§3: recursion through polymorphism",
            "TYPE b, c. b(A) >= A. c >= b(c).",
        ),
    ];

    for (paper, src) in decl_cases {
        println!("== {paper}");
        match TypedProgram::from_source(src) {
            Err(e) => println!("   {e}\n"),
            Ok(_) => unreachable!("must be rejected: {src}"),
        }
    }

    for case in cases {
        println!("== {} \n   {}", case.title, case.paper);
        let program = TypedProgram::from_source(&case.source)?;
        match program.check_all() {
            Err(e) => println!("   {e}"),
            Ok(()) => unreachable!("must be rejected: {}", case.title),
        }
    }
    Ok(())
}
