//! Theorem 6 in action: audit every resolvent of real executions, and
//! inject a fault to watch type errors surface at runtime when the static
//! checker is bypassed.
//!
//! Run with: `cargo run --example consistency_audit`

use subtype_lp::core::consistency::{AuditConfig, Auditor};
use subtype_lp::gen::programs;
use subtype_lp::TypedProgram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Clean run: naive reverse of a 12-element list -------------------
    let src = programs::nrev(12);
    let program = TypedProgram::from_source(&src)?;
    program.check_all()?;
    let report = program.audit_query(0, AuditConfig::default());
    println!(
        "nrev(12): {} solutions, {} resolvents audited, {} violations",
        report.solutions.len(),
        report.resolvents_checked,
        report.violations.len()
    );
    assert!(
        report.is_clean(),
        "Theorem 6: every resolvent is well-typed"
    );

    // ---- Fault injection --------------------------------------------------
    // An ill-typed fact (a bare number where a list belongs) sneaks past if
    // static checking is skipped; the auditor catches the consequences at
    // runtime.
    let bad = format!(
        "{}
         PRED first(list(int), int).
         first(cons(X, L), X).
         first(0, 0).            % ill-typed: 0 is not a list
         :- first(F, X).
        ",
        programs::LIST_DECLS
    );
    let module = subtype_lp::parser::parse_module(&bad)?;
    let cs = subtype_lp::core::ConstraintSet::from_module(&module)?.checked(&module.sig)?;
    let preds = subtype_lp::core::PredTypeTable::from_module(&module).map_err(|e| e.to_string())?;
    let checker = subtype_lp::core::Checker::new(&module.sig, &cs, &preds);

    // Statically: rejected.
    let clauses: Vec<_> = module.clauses.iter().map(|c| c.clause.clone()).collect();
    let errors = checker
        .check_program(clauses.iter())
        .expect_err("static checking catches the bad fact");
    println!("\nstatic check rejects {} clause(s):", errors.len());
    for (i, e) in &errors {
        println!("  clause #{i}: {e}");
    }

    // Dynamically (checker bypassed): the audit flags the inconsistency.
    let db = module.database();
    let report = Auditor::new(checker).run(&db, &module.queries[0].goals, AuditConfig::default());
    println!(
        "\nbypassing the checker and running anyway: answers consistent = {}",
        report.answers_consistent
    );
    assert!(
        !report.is_clean(),
        "the corollary to Theorem 6 must fail for an ill-typed program"
    );
    println!("the Theorem 6 corollary fails exactly as the paper predicts.");
    Ok(())
}
