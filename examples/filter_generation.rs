//! Automatic filtering predicates (the §7 "future work", implemented):
//! derive `int2nat` instead of writing it, splice it into a program, and run
//! the paper's filtered query.
//!
//! Run with: `cargo run --example filter_generation`

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::core::consistency::Auditor;
use subtype_lp::core::filter::build_filter;
use subtype_lp::core::{Checker, ConstraintSet, PredTypeTable};
use subtype_lp::term::{Term, TermDisplay};

const SOURCE: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).

    PRED p(nat).
    PRED q(int).
    p(0). p(succ(0)).
    q(succ(0)). q(pred(0)).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut module = subtype_lp::parser::parse_module(SOURCE)?;
    let cs = ConstraintSet::from_module(&module)?.checked(&module.sig)?;

    // Derive the conversion predicate the paper wrote by hand (§7).
    let int = Term::constant(module.sig.lookup("int").unwrap());
    let nat = Term::constant(module.sig.lookup("nat").unwrap());
    let lib = build_filter(&mut module.sig, &cs, &int, &nat, &mut module.gen)?;
    println!("generated {} clause(s) for int -> nat:", lib.clauses.len());
    for c in &lib.clauses {
        let head = TermDisplay::new(&c.head, &module.sig);
        if c.body.is_empty() {
            println!("  {head}.");
        } else {
            let body: Vec<String> = c
                .body
                .iter()
                .map(|b| TermDisplay::new(b, &module.sig).to_string())
                .collect();
            println!("  {head} :- {}.", body.join(", "));
        }
    }

    // Splice the generated predicates into the program and type-check the
    // whole thing, including the §7 query through the filter.
    let mut preds = PredTypeTable::from_module(&module)?;
    for pt in &lib.pred_types {
        preds
            .insert(&module.sig, pt.clone())
            .map_err(|e| e.to_string())?;
    }
    let mut db = module.database();
    for c in &lib.clauses {
        db.add(c.clone());
    }
    let checker = Checker::new(&module.sig, &cs, &preds);
    let all_clauses: Vec<_> = module
        .clauses
        .iter()
        .map(|c| c.clause.clone())
        .chain(lib.clauses.iter().cloned())
        .collect();
    checker
        .check_program(all_clauses.iter())
        .map_err(|e| format!("{e:?}"))?;
    println!("\nprogram + generated filter is well-typed");

    // :- p(X), filter(Y, X), q(Y).   (the paper's query, filter generated)
    let p = module.sig.lookup("p").unwrap();
    let q = module.sig.lookup("q").unwrap();
    let x = Term::Var(module.gen.fresh());
    let y = Term::Var(module.gen.fresh());
    let goals = vec![
        Term::app(p, vec![x.clone()]),
        Term::app(lib.entry, vec![y.clone(), x.clone()]),
        Term::app(q, vec![y.clone()]),
    ];
    checker.check_query(&goals).map_err(|e| e.to_string())?;
    let report = Auditor::new(checker).run(&db, &goals, AuditConfig::default());
    println!("\n:- p(X), {}(Y, X), q(Y).", module.sig.name(lib.entry));
    for sol in &report.solutions {
        println!(
            "  X = {}, Y = {}",
            TermDisplay::new(&sol.answer.resolve(&x), &module.sig),
            TermDisplay::new(&sol.answer.resolve(&y), &module.sig),
        );
    }
    println!(
        "  ({} resolvents audited, clean: {})",
        report.resolvents_checked,
        report.is_clean()
    );
    assert!(report.is_clean());
    assert_eq!(report.solutions.len(), 1); // only succ(0) passes both sides
    Ok(())
}
