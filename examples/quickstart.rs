//! Quickstart: declare types, check a program, run a query.
//!
//! This is the paper's running example (§1): lists built from `nil`/`cons`
//! with the empty/non-empty subtype split, and a typed `app` (append)
//! predicate.
//!
//! Run with: `cargo run --example quickstart`

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::term::Term;
use subtype_lp::TypedProgram;

const SOURCE: &str = "
    % The paper's §1 declarations.
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.

    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.

    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).

    % Typed append.
    PRED app(list(A), list(A), list(A)).
    app(nil, L, L).
    app(cons(X, L), M, cons(X, N)) :- app(L, M, N).

    % Append two int lists.
    :- app(cons(0, nil), cons(succ(0), cons(pred(0), nil)), Z).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = TypedProgram::from_source(SOURCE)?;

    // 1. Static checking (Definition 16).
    program.check_all()?;
    println!("program is well-typed");

    // 2. Subtype queries against the declarations (Definition 3).
    let prover = program.prover();
    let sig = &program.module().sig;
    let int = Term::constant(sig.lookup("int").unwrap());
    let nat = Term::constant(sig.lookup("nat").unwrap());
    println!("int >= nat : {}", prover.subtype(&int, &nat).is_proved());
    println!("nat >= int : {}", prover.subtype(&nat, &int).is_proved());

    // 3. Execution with consistency auditing (Theorem 6): every resolvent
    //    produced by the SLD engine is re-checked against the types.
    let report = program.audit_query(0, AuditConfig::default());
    let q = &program.module().queries[0];
    for sol in &report.solutions {
        for (v, name) in q.hints.iter() {
            let value = sol.answer.resolve(&Term::Var(v));
            println!("{name} = {}", program.display_with(&value, &q.hints));
        }
    }
    println!(
        "audited {} resolvents, {} violations, answers consistent: {}",
        report.resolvents_checked,
        report.violations.len(),
        report.answers_consistent
    );
    assert!(report.is_clean());
    Ok(())
}
