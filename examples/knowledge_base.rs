//! Non-uniform polymorphic types (paper §1): the `id(males)/id(females)`
//! knowledge-representation example, compared against what the MO84
//! baseline can express.
//!
//! The paper assigns meaning to *all* types, but defines well-typedness only
//! for uniform polymorphic declarations. This example therefore explores
//! non-uniform declarations at the semantic level — through the Horn theory
//! `H_C` (Definition 3): shallow derivations are found by blind
//! iterative-deepening SLD, and the deeper `id(person)` derivations are
//! *replayed* clause by clause (blind search over `H_C` blows up
//! exponentially — the very motivation for the paper's §3 strategy, which
//! requires uniformity and so does not apply here).
//!
//! Run with: `cargo run --example knowledge_base`

use subtype_lp::baseline::FuncSigTable;
use subtype_lp::core::{ConstraintSet, NaiveProver};
use subtype_lp::term::{Term, TermDisplay};

const SOURCE: &str = "
    FUNC 0, succ, m, f.
    TYPE nat, males, females, person, id.
    nat >= 0 + succ(nat).

    % Non-uniform: id is indexed by *which* population the number identifies.
    id(males) >= m(nat).
    id(females) >= f(nat).

    person >= males + females.

    % id(person) therefore contains the ids of both populations…
    id(person) >= id(males) + id(females).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = subtype_lp::parser::parse_module(SOURCE)?;
    let cs = ConstraintSet::from_module(&module)?;
    let sig = &module.sig;

    // The declarations are NOT uniform polymorphic: id(males) applies id to
    // a constant, so the §3 machinery (match, the deterministic strategy)
    // is out of scope — exactly as the paper says.
    match cs.clone().checked(sig) {
        Err(e) => println!("uniform polymorphic? no — {e}"),
        Ok(_) => unreachable!("id(males) >= … is not uniform"),
    }

    let prover = NaiveProver::new(sig, &cs)
        .with_max_depth(7)
        .with_step_budget(500_000);

    let id = sig.lookup("id").unwrap();
    let males = sig.lookup("males").unwrap();
    let females = sig.lookup("females").unwrap();
    let person = sig.lookup("person").unwrap();
    let m = sig.lookup("m").unwrap();
    let f = sig.lookup("f").unwrap();
    let zero = sig.lookup("0").unwrap();
    let succ = sig.lookup("succ").unwrap();

    let one = Term::app(succ, vec![Term::constant(zero)]);
    let m0 = Term::app(m, vec![Term::constant(zero)]);
    let f0 = Term::app(f, vec![Term::constant(zero)]);
    let f1 = Term::app(f, vec![one]);
    let id_males = Term::app(id, vec![Term::constant(males)]);
    let id_females = Term::app(id, vec![Term::constant(females)]);
    let id_person = Term::app(id, vec![Term::constant(person)]);

    println!("\nshallow memberships by blind SLD over H_C (Definition 3):");
    for (ty, t, expected) in [
        (&id_males, &m0, true),
        (&id_males, &f0, false),
        (&id_females, &f0, true),
    ] {
        let outcome = prover.prove(ty, t);
        println!(
            "  {} ∋ {} : {:?}",
            TermDisplay::new(ty, sig),
            TermDisplay::new(t, sig),
            outcome
        );
        assert_eq!(outcome.is_proved(), expected);
    }

    // id(person) memberships need depth-10+ refutations of H_C — blind
    // search cannot reach them, so replay the derivations clause by clause.
    // Database layout: facts 0..=6 in declaration order (union first),
    // substitution axioms next, transitivity last.
    let theory = prover.theory();
    let trans = theory.database().len() - 1;
    let axiom_for = |s: lp_term::Sym| {
        (0..theory.database().len())
            .find(|&i| {
                let c = theory.database().clause(i);
                c.head.args().len() == 2
                    && c.head.args()[0].functor() == Some(s)
                    && c.head.args()[1].functor() == Some(s)
                    && c.head.args()[0].args().iter().all(Term::is_var)
                    && c.body.len() == sig.arity(s).unwrap_or(0)
            })
            .expect("substitution axiom present")
    };
    // Facts: 0/1 = union, 2 = nat, 3 = id(males), 4 = id(females),
    // 5 = person, 6 = id(person).
    println!("\ndeep memberships by replaying their SLD derivations:");
    let m_case = [trans, 6, trans, 0, trans, 3, axiom_for(m), trans, 2, 0];
    let resolvent = theory
        .replay(vec![theory.goal(&id_person, &m0)], &m_case)
        .expect("derivation applies");
    assert!(resolvent.is_empty());
    println!(
        "  {} ∋ {} : refuted in {} steps",
        TermDisplay::new(&id_person, sig),
        TermDisplay::new(&m0, sig),
        m_case.len()
    );

    let f_case = [
        trans,
        6,
        trans,
        1,
        trans,
        4,
        axiom_for(f),
        trans,
        2,
        trans,
        1,
        axiom_for(succ),
        trans,
        2,
        0,
    ];
    let resolvent = theory
        .replay(vec![theory.goal(&id_person, &f1)], &f_case)
        .expect("derivation applies");
    assert!(resolvent.is_empty());
    println!(
        "  {} ∋ {} : refuted in {} steps",
        TermDisplay::new(&id_person, sig),
        TermDisplay::new(&f1, sig),
        f_case.len()
    );

    // MO84 cannot express any of this: id would need per-instance
    // constructor signatures and person >= males + females is a subtype
    // relation between type constructors.
    match FuncSigTable::from_constraints(sig, &cs) {
        Err(e) => println!("\nMO84 conversion fails, as expected:\n  {e}"),
        Ok(_) => unreachable!("non-uniform subtyping is not MO84-expressible"),
    }
    Ok(())
}
