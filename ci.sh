#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test --workspace -q
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Shipped examples must stay lint-clean (exit 0 even under --deny warnings).
target/release/slp lint --deny warnings examples/app.slp
target/release/slp lint --deny warnings examples/naturals.slp

# Lint output is pinned byte-for-byte against the committed goldens, in both
# human and JSON formats. lint_demo.slp is intentionally dirty (exit 2).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for stem in app naturals lint_demo; do
  target/release/slp lint "examples/$stem.slp" > "$tmp/$stem.txt" || true
  target/release/slp lint "examples/$stem.slp" --format json > "$tmp/$stem.json" || true
  diff -u "tests/golden/$stem.txt" "$tmp/$stem.txt"
  diff -u "tests/golden/$stem.json" "$tmp/$stem.json"
done
