#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test --workspace -q
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
