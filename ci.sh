#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test --workspace -q
cargo test --workspace -q --release
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Shipped examples must stay lint-clean (exit 0 even under --deny warnings).
target/release/slp lint --deny warnings examples/app.slp
target/release/slp lint --deny warnings examples/naturals.slp

# Lint output is pinned byte-for-byte against the committed goldens, in both
# human and JSON formats. lint_demo.slp is intentionally dirty (exit 2).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for stem in app naturals lint_demo; do
  target/release/slp lint "examples/$stem.slp" > "$tmp/$stem.txt" || true
  target/release/slp lint "examples/$stem.slp" --format json > "$tmp/$stem.json" || true
  diff -u "tests/golden/$stem.txt" "$tmp/$stem.txt"
  diff -u "tests/golden/$stem.json" "$tmp/$stem.json"
done

# The parallel batch pipeline must be byte-identical to the serial run: a
# multi-file `--jobs 4` lint is the concatenation (in input order) of the
# committed per-file goldens.
for fmt in txt json; do
  flag=""
  [ "$fmt" = json ] && flag="--format json"
  # shellcheck disable=SC2086
  target/release/slp lint examples/app.slp examples/naturals.slp \
    examples/lint_demo.slp --jobs 4 $flag > "$tmp/batch.$fmt" || true
  cat "tests/golden/app.$fmt" "tests/golden/naturals.$fmt" \
    "tests/golden/lint_demo.$fmt" > "$tmp/expected.$fmt"
  diff -u "$tmp/expected.$fmt" "$tmp/batch.$fmt"
done

# check under --jobs 4 (clause-level parallelism) agrees with serial too.
for stem in app naturals; do
  target/release/slp check "examples/$stem.slp" --jobs 1 > "$tmp/c1.txt"
  target/release/slp check "examples/$stem.slp" --jobs 4 > "$tmp/c4.txt"
  diff -u "$tmp/c1.txt" "$tmp/c4.txt"
done
