#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint, goldens, perf smoke, concurrency.
# Run from the repo root.
#
#   ci.sh           full gate (release build, all checks, perf smoke)
#   ci.sh --quick   debug build + tests + fmt + clippy — the fast inner loop
#
# Every step prints a `ci: <name>: <seconds>s` timing line on stderr as it
# finishes, and the full gate repeats them as a summary table at the end, so
# a slow step is visible without re-running under `time`.
set -euo pipefail
cd "$(dirname "$0")"

# Golden corpus lists shared with scripts/bless.sh.
# shellcheck source=scripts/goldens.list
source scripts/goldens.list

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *)
      echo "ci.sh: unknown argument \`$arg\` (only --quick is supported)" >&2
      exit 2
      ;;
  esac
done

# Runs a named step, timing it to stderr and into the summary table:
# `step NAME CMD...`.
TIMING_NAMES=()
TIMING_SECS=()
step() {
  local name="$1"
  shift
  local t0 t1 secs
  t0=$(date +%s.%N)
  "$@"
  t1=$(date +%s.%N)
  secs=$(echo "$t1 $t0" | awk '{printf "%.1f", $1 - $2}')
  TIMING_NAMES+=("$name")
  TIMING_SECS+=("$secs")
  printf 'ci: %s: %ss\n' "$name" "$secs" >&2
}

# Repeats every `ci: <name>: <s>s` timing as an aligned table on stderr.
timing_summary() {
  local i width=0
  for i in "${!TIMING_NAMES[@]}"; do
    if [ "${#TIMING_NAMES[$i]}" -gt "$width" ]; then
      width=${#TIMING_NAMES[$i]}
    fi
  done
  echo "ci: timing summary" >&2
  for i in "${!TIMING_NAMES[@]}"; do
    printf 'ci:   %-*s %6ss\n' "$width" "${TIMING_NAMES[$i]}" \
      "${TIMING_SECS[$i]}" >&2
  done
}

# Both gates lint the gate itself: ci.sh, scripts/bless.sh, and the sourced
# goldens.list must be shellcheck-clean. Skipped (loudly) where the binary
# is not installed, so the gate still runs on minimal containers.
shellcheck_scripts() {
  if ! command -v shellcheck > /dev/null 2>&1; then
    echo "ci: warning: shellcheck not installed, skipping script lint" >&2
    return 0
  fi
  shellcheck ci.sh scripts/bless.sh scripts/goldens.list
}

if [ "$quick" = 1 ]; then
  step build-debug cargo build --workspace
  step test-debug cargo test --workspace -q
  step fmt cargo fmt --all --check
  step clippy cargo clippy --workspace --all-targets -- -D warnings
  step shellcheck shellcheck_scripts
  echo "ci: quick gate passed" >&2
  exit 0
fi

step build-release cargo build --release --workspace
step test-debug cargo test --workspace -q
step test-release cargo test --workspace -q --release
step fmt cargo fmt --all --check
step clippy cargo clippy --workspace --all-targets -- -D warnings
step shellcheck shellcheck_scripts

# Shipped examples must stay lint-clean (exit 0 even under --deny warnings).
step lint-examples target/release/slp lint --deny warnings \
  examples/app.slp examples/naturals.slp

# Lint output is pinned byte-for-byte against the committed goldens, in both
# human and JSON formats. lint_demo.slp and modes_demo.slp are intentionally
# dirty (exit 2).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
golden_lint() {
  local stem
  for stem in "${GOLDEN_LINT_STEMS[@]}"; do
    target/release/slp lint "examples/$stem.slp" > "$tmp/$stem.txt" || true
    target/release/slp lint "examples/$stem.slp" --format json > "$tmp/$stem.json" || true
    diff -u "tests/golden/$stem.txt" "$tmp/$stem.txt"
    diff -u "tests/golden/$stem.json" "$tmp/$stem.json"
  done
}
step golden-lint golden_lint

# The parallel batch pipeline must be byte-identical to the serial run: a
# multi-file `--jobs 4` lint is the concatenation (in input order) of the
# committed per-file goldens.
golden_batch() {
  local fmt flag
  for fmt in txt json; do
    flag=""
    [ "$fmt" = json ] && flag="--format json"
    # shellcheck disable=SC2086
    target/release/slp lint examples/app.slp examples/naturals.slp \
      examples/lint_demo.slp --jobs 4 $flag > "$tmp/batch.$fmt" || true
    cat "tests/golden/app.$fmt" "tests/golden/naturals.$fmt" \
      "tests/golden/lint_demo.$fmt" > "$tmp/expected.$fmt"
    diff -u "$tmp/expected.$fmt" "$tmp/batch.$fmt"
  done
}
step golden-batch golden_batch

# The mode audit is pinned byte-for-byte in both formats (query 1 exercises
# a runtime input-boundedness violation on top of the static diagnostics, so
# the exit code is 2 by design), and the extended Theorem-6 walk must be
# byte-identical across job counts — the mode check rides the same sharded
# resolvent pipeline as the consistency audit.
modes_golden() {
  local fmt flag jobs
  for fmt in txt json; do
    flag=""
    [ "$fmt" = json ] && flag="--format json"
    # shellcheck disable=SC2086
    target/release/slp audit examples/modes_demo.slp --modes -q 1 $flag \
      > "$tmp/modes_audit.$fmt" || true
    diff -u "tests/golden/modes_demo_audit.$fmt" "$tmp/modes_audit.$fmt"
  done
  for jobs in 1 4; do
    target/release/slp audit examples/modes_demo.slp --modes --jobs "$jobs" \
      > "$tmp/modes_jobs.$jobs" 2>&1 || true
  done
  diff -u "$tmp/modes_jobs.1" "$tmp/modes_jobs.4"
}
step modes-golden modes_golden

# `slp explain` output is pinned byte-for-byte too: a refutation core (h),
# a rejected/well-typed mix with a validated witness (q), and a pristine
# predicate (app), in both formats.
golden_explain() {
  local pred fmt flag
  for pred in "${GOLDEN_EXPLAIN_PREDS[@]}"; do
    for fmt in txt json; do
      flag=""
      [ "$fmt" = json ] && flag="--format json"
      # shellcheck disable=SC2086
      target/release/slp explain examples/ill_typed.slp "$pred" $flag \
        > "$tmp/explain_$pred.$fmt"
      diff -u "tests/golden/explain_$pred.$fmt" "$tmp/explain_$pred.$fmt"
    done
  done
}
step golden-explain golden_explain

# Every cached Proved entry must replay through the independent witness
# validator, serial and sharded alike — and the verdicts printed on stdout
# must be byte-identical across job counts even on the ill-typed corpus
# (exit 2 there: the corpus is rejected, but the audit itself must pass,
# which we check by diffing stderr too — an E0301 would show up in it).
verify_witnesses() {
  local stem jobs
  for stem in app naturals; do
    for jobs in 1 4; do
      target/release/slp check "examples/$stem.slp" --verify-witnesses \
        --jobs "$jobs" > "$tmp/vw$jobs.out"
    done
    diff -u "$tmp/vw1.out" "$tmp/vw4.out"
  done
  for jobs in 1 4; do
    target/release/slp check examples/ill_typed.slp --verify-witnesses \
      --jobs "$jobs" > "$tmp/vw$jobs.out" 2> "$tmp/vw$jobs.err" || true
  done
  diff -u "$tmp/vw1.out" "$tmp/vw4.out"
  diff -u "$tmp/vw1.err" "$tmp/vw4.err"
  if grep -q E0301 "$tmp/vw1.err"; then
    echo "ci: witness audit failed on examples/ill_typed.slp" >&2
    return 1
  fi
}
step verify-witnesses verify_witnesses

# check under --jobs 4 (clause-level parallelism) agrees with serial too.
jobs_agree() {
  local stem
  for stem in app naturals; do
    target/release/slp check "examples/$stem.slp" --jobs 1 > "$tmp/c1.txt"
    target/release/slp check "examples/$stem.slp" --jobs 4 > "$tmp/c4.txt"
    diff -u "$tmp/c1.txt" "$tmp/c4.txt"
  done
}
step check-jobs-agree jobs_agree

# `--stats` must leave stdout byte-identical, and the JSON document must
# match the committed schema golden (key order is part of the contract).
stats_golden() {
  target/release/slp check examples/app.slp > "$tmp/plain.out"
  target/release/slp check examples/app.slp --stats --format json \
    > "$tmp/stats.out" 2> "$tmp/stats.err"
  diff -u "$tmp/plain.out" "$tmp/stats.out"
  # Mask numeric values (timers vary run to run); field names and their
  # order are the stable part of the slp-metrics/1 contract.
  sed -E 's/:[0-9]+(\.[0-9]+)?/:N/g' "$tmp/stats.err" > "$tmp/schema.txt"
  diff -u tests/golden/stats_schema.txt "$tmp/schema.txt"
}
step stats-golden stats_golden

# The serve daemon replay: a committed request transcript (cold start, a
# warm constraint-preserving delta, and one injected panic at request 5)
# is piped through `slp serve` and the response stream must match the
# committed golden byte-for-byte under both one worker and four — the
# daemon's fault recovery and incremental re-checking are part of the
# pinned contract.
serve_replay() {
  local jobs
  for jobs in 1 4; do
    target/release/slp serve --stdio --jobs "$jobs" --faults panic@5 \
      < tests/golden/serve_session.requests > "$tmp/serve.$jobs"
    diff -u tests/golden/serve_session.golden "$tmp/serve.$jobs"
  done
}
step serve-replay serve_replay

# Perf smoke gate: the deterministic BENCH_5 counter signature of the
# F6/F7 workload family must match the committed baseline exactly (counts,
# never wall time — the gate is load-independent). Re-bless intentional
# changes with scripts/bless.sh.
step perf-smoke target/release/report --smoke --baseline BENCH_5.json

# The ground-closure short-circuit has its own golden: the workload is
# compared against the committed baseline in isolation, so a regression
# that stops hitting the closure (closure_hits dropping to 0) fails loudly
# even if someone loosens the full smoke's tolerance.
step closure-golden target/release/report --smoke --baseline BENCH_5.json \
  --only ground_closure

# Concurrency gate: the work-stealing pool and the seqlocked proof table
# must actually engage, and must never change observable output.
#
#   1. The contention_storm workload is smoke-gated in isolation: its
#      baseline pins `steals` to an exact nonzero value (a barrier inside
#      the workload forces every worker but one to steal), so a silent
#      fallback to serial execution — steals collapsing to 0 — fails CI
#      even though the byte-diff half of this gate would still pass.
#   2. Every user-facing entry point (check, lint, audit --modes, serve)
#      runs under --jobs 8 — more workers than the storm uses, and enough
#      oversubscription to shuffle chunk ownership — and stdout, stderr,
#      and the exit code are compared byte-for-byte against --jobs 1.
concurrency_gate() {
  local stem jobs ec
  for stem in "${GOLDEN_LINT_STEMS[@]}"; do
    for jobs in 1 8; do
      ec=0
      target/release/slp check "examples/$stem.slp" --jobs "$jobs" \
        > "$tmp/cg_check.$jobs.out" 2> "$tmp/cg_check.$jobs.err" || ec=$?
      echo "$ec" > "$tmp/cg_check.$jobs.ec"
      ec=0
      target/release/slp lint "examples/$stem.slp" --jobs "$jobs" \
        > "$tmp/cg_lint.$jobs.out" 2> "$tmp/cg_lint.$jobs.err" || ec=$?
      echo "$ec" > "$tmp/cg_lint.$jobs.ec"
    done
    diff -u "$tmp/cg_check.1.out" "$tmp/cg_check.8.out"
    diff -u "$tmp/cg_check.1.err" "$tmp/cg_check.8.err"
    diff -u "$tmp/cg_check.1.ec" "$tmp/cg_check.8.ec"
    diff -u "$tmp/cg_lint.1.out" "$tmp/cg_lint.8.out"
    diff -u "$tmp/cg_lint.1.err" "$tmp/cg_lint.8.err"
    diff -u "$tmp/cg_lint.1.ec" "$tmp/cg_lint.8.ec"
  done
  for jobs in 1 8; do
    target/release/slp audit examples/modes_demo.slp --modes --jobs "$jobs" \
      > "$tmp/cg_audit.$jobs" 2>&1 || true
  done
  diff -u "$tmp/cg_audit.1" "$tmp/cg_audit.8"
  target/release/slp serve --stdio --jobs 8 --faults panic@5 \
    < tests/golden/serve_session.requests > "$tmp/cg_serve.8"
  diff -u tests/golden/serve_session.golden "$tmp/cg_serve.8"
}
step storm-smoke target/release/report --smoke --baseline BENCH_5.json \
  --only contention_storm
step concurrency-gate concurrency_gate

timing_summary
echo "ci: full gate passed" >&2
