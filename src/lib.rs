//! # subtype-lp
//!
//! A complete implementation of the type system of
//! *Type Declarations as Subtype Constraints in Logic Programming*
//! (Dean Jacobs, PLDI 1990): parametric polymorphism with name-based
//! subtypes for logic programs, together with everything needed to use it —
//! a declaration-language front end, an SLD resolution engine, the
//! deterministic subtype prover of §3, the `match` algorithm of §4, the
//! well-typedness checker of §6, a runtime consistency auditor for
//! Theorem 6, and a Mycroft–O'Keefe baseline checker for comparison.
//!
//! The workspace crates are re-exported here under short names:
//!
//! * [`term`] — symbols, terms, substitutions, unification;
//! * [`engine`] — clause database and SLD resolution;
//! * [`parser`] — the `FUNC`/`TYPE`/`PRED`/`>=` declaration language;
//! * [`core`] — the paper's type system;
//! * [`baseline`] — the \[MO84\] comparison checker;
//! * [`gen`] — workload generators used by tests and benchmarks.
//!
//! For most uses, [`TypedProgram`] is the entry point:
//!
//! ```
//! use subtype_lp::TypedProgram;
//!
//! let program = TypedProgram::from_source(
//!     "FUNC 0, succ, pred, nil, cons.
//!      TYPE nat, unnat, int, elist, nelist, list.
//!      nat >= 0 + succ(nat).
//!      unnat >= 0 + pred(unnat).
//!      int >= nat + unnat.
//!      elist >= nil.
//!      nelist(A) >= cons(A, list(A)).
//!      list(A) >= elist + nelist(A).
//!
//!      PRED app(list(A), list(A), list(A)).
//!      app(nil, L, L).
//!      app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
//!
//!      :- app(cons(0, nil), cons(succ(0), nil), Z).",
//! )?;
//!
//! // Static checking: every clause and query respects the PRED types.
//! program.check_all()?;
//!
//! // Execution with consistency auditing (Theorem 6): every resolvent
//! // produced during the run is re-checked.
//! let report = program.audit_query(0, Default::default());
//! assert!(report.is_clean());
//! assert_eq!(report.solutions.len(), 1);
//! # Ok::<(), subtype_lp::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub use lp_baseline as baseline;
pub use lp_engine as engine;
pub use lp_gen as gen;
pub use lp_parser as parser;
pub use lp_term as term;
pub use subtype_core as core;

use lp_engine::{Database, Query, Solution, SolveConfig};
use lp_parser::{Loader, LoaderOptions, Mode, Module, ParseError};
use lp_term::{NameHints, Sym, Term, TermDisplay};
use subtype_core::consistency::{AuditConfig, AuditReport, Auditor};
use subtype_core::modes::{ModeAnalysis, ModeReport};
use subtype_core::welltyped::ClauseTyping;
use subtype_core::TraceEvent;
use subtype_core::{
    CheckedConstraints, Checker, ConstraintSet, Counter, MetricsRegistry, MetricsSnapshot,
    ParallelChecker, PredTypeTable, ProofTable, Prover, ShardedProofTable, TableStats,
    TabledProver, Timer, TypeCheckError, TypeDeclError,
};

/// Any error surfaced by the high-level API.
#[derive(Debug, Clone)]
pub enum Error {
    /// Lexical, syntactic or symbol-resolution error.
    Parse(ParseError),
    /// Ill-formed, non-uniform or unguarded type declarations.
    Declarations(TypeDeclError),
    /// Ill-typed clauses (with their indices) or queries.
    Check(Vec<(usize, TypeCheckError)>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Declarations(e) => write!(f, "type declaration error: {e}"),
            Error::Check(errors) => {
                writeln!(f, "{} ill-typed clause(s)/query(ies):", errors.len())?;
                for (i, e) in errors {
                    writeln!(f, "  #{i}: {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<TypeDeclError> for Error {
    fn from(e: TypeDeclError) -> Self {
        Error::Declarations(e)
    }
}

/// A parsed, validated, ready-to-check-and-run typed logic program.
///
/// The program owns a [`ProofTable`] shared by every checker, matcher and
/// auditor it hands out, so subtype judgements repeated across clauses,
/// queries and audited resolvents are derived once. Tabling is on by default
/// and can be toggled with [`TypedProgram::set_tabling`]; the table is
/// generation-keyed, so it can never serve verdicts from a different
/// constraint theory (see [`subtype_core::table`]).
#[derive(Debug)]
pub struct TypedProgram {
    module: Module,
    constraints: CheckedConstraints,
    pred_types: PredTypeTable,
    table: RefCell<ProofTable>,
    /// The registry the shared [`ProofTable`] counts into; also receives
    /// checker, engine and audit accounting from this program's methods.
    obs: Arc<MetricsRegistry>,
    tabling: bool,
}

impl Clone for TypedProgram {
    fn clone(&self) -> Self {
        // `ProofTable::clone` seeds a *fresh* registry from a snapshot so the
        // clone accounts independently; keep `obs` pointing at that same
        // fresh registry rather than the original's.
        let table = self.table.clone();
        let obs = table.borrow().metrics().clone();
        TypedProgram {
            module: self.module.clone(),
            constraints: self.constraints.clone(),
            pred_types: self.pred_types.clone(),
            table,
            obs,
            tabling: self.tabling,
        }
    }
}

impl TypedProgram {
    /// Parses `src` and validates its type declarations (Definitions 2, 6
    /// and 9).
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] or [`Error::Declarations`].
    pub fn from_source(src: &str) -> Result<Self, Error> {
        let module = lp_parser::parse_module(src)?;
        Self::from_module(module)
    }

    /// Wraps an already-loaded module.
    ///
    /// # Errors
    ///
    /// [`Error::Declarations`] if the constraints are malformed, non-uniform
    /// or unguarded.
    pub fn from_module(module: Module) -> Result<Self, Error> {
        Self::from_module_with_metrics(module, MetricsRegistry::shared())
    }

    /// [`TypedProgram::from_module`], counting into a caller-supplied
    /// registry (shared, for instance, with a [`ShardedProofTable`] or with
    /// other programs in the same batch).
    ///
    /// # Errors
    ///
    /// [`Error::Declarations`] if the constraints are malformed, non-uniform
    /// or unguarded.
    pub fn from_module_with_metrics(
        module: Module,
        obs: Arc<MetricsRegistry>,
    ) -> Result<Self, Error> {
        let constraints = ConstraintSet::from_module(&module)?.checked(&module.sig)?;
        let pred_types =
            PredTypeTable::from_module(&module).map_err(|e| Error::Check(vec![(0, e)]))?;
        Ok(TypedProgram {
            module,
            constraints,
            pred_types,
            table: RefCell::new(ProofTable::with_metrics(obs.clone())),
            obs,
            tabling: true,
        })
    }

    /// The metrics registry this program (and its shared proof table) counts
    /// into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// A point-in-time snapshot of every counter and timer recorded so far.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Enables or disables proof tabling for the checkers and provers this
    /// program hands out. Disabling does not clear the table, so re-enabling
    /// picks the cache back up.
    pub fn set_tabling(&mut self, enabled: bool) {
        self.tabling = enabled;
    }

    /// Builder-style [`TypedProgram::set_tabling`].
    pub fn with_tabling(mut self, enabled: bool) -> Self {
        self.tabling = enabled;
        self
    }

    /// Whether proof tabling is currently enabled.
    pub fn tabling(&self) -> bool {
        self.tabling
    }

    /// The shared proof table (populated lazily by checking and proving).
    pub fn proof_table(&self) -> &RefCell<ProofTable> {
        &self.table
    }

    /// Lifetime hit/miss/insert/evict counters of the shared proof table.
    pub fn table_stats(&self) -> TableStats {
        self.table.borrow().stats()
    }

    /// The underlying module (signature, clauses, queries, hints).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The checked constraint set.
    pub fn constraints(&self) -> &CheckedConstraints {
        &self.constraints
    }

    /// The predicate-type table (`D` of Definition 15).
    pub fn pred_types(&self) -> &PredTypeTable {
        &self.pred_types
    }

    /// A well-typedness checker borrowing this program (tabled unless
    /// disabled via [`TypedProgram::set_tabling`]).
    pub fn checker(&self) -> Checker<'_> {
        let checker = if self.tabling {
            Checker::with_table(
                &self.module.sig,
                &self.constraints,
                &self.pred_types,
                &self.table,
            )
        } else {
            Checker::new(&self.module.sig, &self.constraints, &self.pred_types)
        };
        checker.with_obs(Some(&self.obs))
    }

    /// A deterministic subtype prover borrowing this program.
    pub fn prover(&self) -> Prover<'_> {
        Prover::new(&self.module.sig, &self.constraints)
    }

    /// A caching subtype prover over this program's shared proof table
    /// (regardless of the [`TypedProgram::tabling`] toggle, which only
    /// governs the provers created implicitly by [`TypedProgram::checker`]).
    pub fn tabled_prover(&self) -> TabledProver<'_> {
        TabledProver::new(&self.module.sig, &self.constraints, &self.table)
    }

    /// Checks every program clause (Definition 16).
    ///
    /// # Errors
    ///
    /// [`Error::Check`] with one entry per ill-typed clause.
    pub fn check_clauses(&self) -> Result<Vec<ClauseTyping>, Error> {
        self.checker()
            .check_program(self.module.clauses.iter().map(|c| &c.clause))
            .map_err(Error::Check)
    }

    /// Checks every query.
    ///
    /// # Errors
    ///
    /// [`Error::Check`] with one entry per ill-typed query (indices are
    /// query indices).
    pub fn check_queries(&self) -> Result<Vec<ClauseTyping>, Error> {
        let checker = self.checker();
        let mut typings = Vec::new();
        let mut errors = Vec::new();
        for (i, q) in self.module.queries.iter().enumerate() {
            match checker.check_query(&q.goals) {
                Ok(t) => typings.push(t),
                Err(e) => errors.push((i, e)),
            }
        }
        if errors.is_empty() {
            Ok(typings)
        } else {
            Err(Error::Check(errors))
        }
    }

    /// Checks all clauses and all queries.
    ///
    /// # Errors
    ///
    /// The first of [`Self::check_clauses`] / [`Self::check_queries`] to
    /// fail.
    pub fn check_all(&self) -> Result<(), Error> {
        self.check_clauses()?;
        self.check_queries()?;
        Ok(())
    }

    /// A clause-level parallel checker over `jobs` workers (0 = one per
    /// core) sharing `table` when tabling is wanted.
    ///
    /// This deliberately takes the sharded table by reference instead of
    /// using the program's own single-threaded [`ProofTable`]: the
    /// `RefCell`-wrapped table cannot cross threads, and keeping the two
    /// backends separate means serial callers pay no locking.
    pub fn parallel_checker<'a>(
        &'a self,
        table: Option<&'a ShardedProofTable>,
        jobs: usize,
    ) -> ParallelChecker<'a> {
        let checker = match table {
            Some(t) => ParallelChecker::with_table(
                &self.module.sig,
                &self.constraints,
                &self.pred_types,
                t,
                jobs,
            ),
            None => {
                ParallelChecker::new(&self.module.sig, &self.constraints, &self.pred_types, jobs)
            }
        };
        checker.with_obs(Some(&self.obs))
    }

    /// Checks every program clause across `jobs` worker threads, sharing
    /// subtype derivations through `table`. Error order (and typings) are
    /// identical to [`Self::check_clauses`].
    ///
    /// # Errors
    ///
    /// [`Error::Check`] with one entry per ill-typed clause, ascending.
    pub fn check_clauses_parallel(
        &self,
        table: Option<&ShardedProofTable>,
        jobs: usize,
    ) -> Result<Vec<ClauseTyping>, Error> {
        let clauses: Vec<_> = self.module.clauses.iter().map(|c| &c.clause).collect();
        self.parallel_checker(table, jobs)
            .check_program(&clauses)
            .map_err(Error::Check)
    }

    /// Checks every query across `jobs` worker threads. Error order is
    /// identical to [`Self::check_queries`].
    ///
    /// # Errors
    ///
    /// [`Error::Check`] with one entry per ill-typed query, ascending.
    pub fn check_queries_parallel(
        &self,
        table: Option<&ShardedProofTable>,
        jobs: usize,
    ) -> Result<Vec<ClauseTyping>, Error> {
        let queries: Vec<&[Term]> = self
            .module
            .queries
            .iter()
            .map(|q| q.goals.as_slice())
            .collect();
        self.parallel_checker(table, jobs)
            .check_queries(&queries)
            .map_err(Error::Check)
    }

    /// Builds the engine database for the program's clauses.
    pub fn database(&self) -> Database {
        self.module.database()
    }

    /// Runs query number `index`, returning up to `max_solutions` answers.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn run_query(&self, index: usize, max_solutions: usize) -> Vec<Solution> {
        let db = self.database();
        let goals = self.module.queries[index].goals.clone();
        let started = Instant::now();
        let mut q = Query::new(&db, goals, SolveConfig::default());
        let mut out = Vec::new();
        while out.len() < max_solutions {
            match q.next_solution() {
                Some(s) => out.push(s),
                None => break,
            }
        }
        self.record_solve(started, q.stats());
        out
    }

    /// Folds one finished (or abandoned) search into the registry.
    fn record_solve(&self, started: Instant, stats: engine::Stats) {
        self.obs.observe(Timer::EngineSolve, started.elapsed());
        self.obs.add(Counter::EngineAttempts, stats.attempts);
        self.obs.add(Counter::EngineSteps, stats.steps);
        self.obs
            .add(Counter::EngineDepthCutoffs, stats.depth_cutoffs);
    }

    /// Runs query number `index` under the Theorem 6 consistency auditor.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn audit_query(&self, index: usize, config: AuditConfig) -> AuditReport {
        let db = self.database();
        let started = Instant::now();
        let report =
            Auditor::new(self.checker()).run(&db, &self.module.queries[index].goals, config);
        self.record_solve(started, report.engine);
        self.obs
            .add(Counter::AuditResolvents, report.resolvents_checked);
        report
    }

    /// Runs the fixpoint mode-inference pass over this program: declared
    /// `MODE` predicates are checked, the rest inferred (see
    /// [`subtype_core::modes`]). Inferences count into this program's
    /// registry.
    pub fn mode_report(&self) -> ModeReport {
        ModeAnalysis::new(&self.module)
            .with_obs(Some(&self.obs))
            .run()
    }

    /// [`TypedProgram::audit_query`] under the mode discipline: besides the
    /// Theorem 6 well-typedness check, every resolvent (including the
    /// initial query goals) must keep the selected atom's `+` positions
    /// ground under `modes`. The extra traffic lands in the
    /// `audit_mode_resolvents` / `mode_violations` counters, and each
    /// violating resolvent emits a `mode.audit` trace span.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn audit_query_with_modes(
        &self,
        index: usize,
        config: AuditConfig,
        modes: &BTreeMap<Sym, Vec<Mode>>,
    ) -> AuditReport {
        let db = self.database();
        let started = Instant::now();
        let report = Auditor::new(self.checker()).run_with_modes(
            &db,
            &self.module.queries[index].goals,
            config,
            Some(modes),
        );
        self.record_solve(started, report.engine);
        self.obs
            .add(Counter::AuditResolvents, report.resolvents_checked);
        self.obs
            .add(Counter::AuditModeResolvents, report.mode_resolvents);
        self.obs
            .add(Counter::ModeViolations, report.mode_violations.len() as u64);
        if self.obs.tracing() {
            for v in &report.mode_violations {
                self.obs.trace(&TraceEvent::ModeAudit {
                    pred: self.module.sig.name(v.pred),
                    ok: false,
                });
            }
        }
        report
    }

    /// Displays a term with this program's symbol names.
    pub fn display<'a>(&'a self, t: &'a Term) -> TermDisplay<'a> {
        TermDisplay::new(t, &self.module.sig)
    }

    /// Displays a term with symbol names and variable name hints.
    pub fn display_with<'a>(&'a self, t: &'a Term, hints: &'a NameHints) -> TermDisplay<'a> {
        TermDisplay::new(t, &self.module.sig).with_hints(hints)
    }

    /// Consumes the program, re-opening it as a [`Loader`] (to resolve
    /// additional command-line types, terms or goals).
    pub fn into_loader(self) -> Loader {
        Loader::resume(self.module, LoaderOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = "
        FUNC 0, succ, pred, nil, cons.
        TYPE nat, unnat, int, elist, nelist, list.
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        elist >= nil.
        nelist(A) >= cons(A, list(A)).
        list(A) >= elist + nelist(A).
        PRED app(list(A), list(A), list(A)).
        app(nil, L, L).
        app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
        :- app(X, Y, cons(0, nil)).
    ";

    #[test]
    fn end_to_end_check_and_run() {
        let p = TypedProgram::from_source(APP).unwrap();
        p.check_all().unwrap();
        let solutions = p.run_query(0, 10);
        assert_eq!(solutions.len(), 2);
    }

    #[test]
    fn audit_is_clean_for_well_typed_program() {
        let p = TypedProgram::from_source(APP).unwrap();
        let report = p.audit_query(0, AuditConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.solutions.len(), 2);
    }

    #[test]
    fn unguarded_declarations_rejected_at_load() {
        let err = TypedProgram::from_source("TYPE c. c >= c.").unwrap_err();
        assert!(matches!(err, Error::Declarations(_)));
    }

    #[test]
    fn ill_typed_query_reported() {
        let src = format!("{APP}\n:- app(nil, 0, 0).");
        let p = TypedProgram::from_source(&src).unwrap();
        p.check_clauses().unwrap();
        let err = p.check_queries().unwrap_err();
        let Error::Check(errors) = err else {
            panic!("expected Check");
        };
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 1);
    }

    #[test]
    fn tabling_caches_repeat_checks_and_matches_untabled_verdicts() {
        let p = TypedProgram::from_source(APP).unwrap();
        p.check_all().unwrap();
        let first = p.table_stats();
        assert!(
            first.misses > 0,
            "checking APP consults the prover at least once"
        );
        p.check_all().unwrap();
        let second = p.table_stats();
        assert!(second.hits > first.hits, "re-check is served from cache");
        assert_eq!(second.misses, first.misses, "no new derivations needed");
        // The untabled checker reaches the same verdicts.
        let plain = TypedProgram::from_source(APP).unwrap().with_tabling(false);
        plain.check_all().unwrap();
        assert_eq!(plain.table_stats(), Default::default());
    }

    #[test]
    fn audited_runs_reuse_the_table_across_resolvents() {
        let p = TypedProgram::from_source(APP).unwrap();
        let report = p.audit_query(0, AuditConfig::default());
        assert!(report.is_clean());
        let stats = p.table_stats();
        assert!(
            stats.hits > 0,
            "resolvents repeat judgements; expected table hits, got {stats:?}"
        );
    }

    #[test]
    fn loader_roundtrip_resolves_cli_terms() {
        let p = TypedProgram::from_source(APP).unwrap();
        let mut loader = p.into_loader();
        let (ty, _) = loader.parse_type("list(int)").unwrap();
        let (t, _) = loader.parse_program_term("cons(0, nil)").unwrap();
        let module = loader.finish();
        let cs = ConstraintSet::from_module(&module)
            .unwrap()
            .checked(&module.sig)
            .unwrap();
        let prover = Prover::new(&module.sig, &cs);
        assert!(prover.member(&ty, &t).is_proved());
    }
}
