//! `slp` — the subtype-lp command-line interface.
//!
//! ```text
//! slp check   FILE                 type-check every clause and query
//! slp run     FILE [-q N] [-n N]   run a query (after checking)
//! slp audit   FILE [-q N] [-n N]   run with Theorem 6 consistency auditing
//! slp subtype FILE SUP SUB         decide SUP >= SUB (deterministic prover)
//! slp match   FILE TYPE TERM       evaluate match(TYPE, TERM)
//! slp filter  FILE FROM TO         generate a filtering predicate (§7)
//! slp export  FILE                 print the module in canonical syntax
//! slp info    FILE                 summarize declarations
//! ```

use std::cell::RefCell;
use std::process::ExitCode;

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::core::{
    match_type, ConstraintSet, MatchOutcome, NaiveProver, ProofTable, Prover, TabledProver,
};
use subtype_lp::term::TermDisplay;
use subtype_lp::TypedProgram;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("slp: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  slp check FILE\n  slp run FILE [-q QUERY] [-n MAX]\n  slp audit FILE [-q QUERY] [-n MAX]\n  slp subtype FILE SUPERTYPE SUBTYPE [--naive]\n  slp match FILE TYPE TERM\n  slp filter FILE FROM_TYPE TO_TYPE\n  slp export FILE\n  slp info FILE\n\nAll commands accept --no-table to disable subtype-proof tabling."
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let file = args.get(1).ok_or_else(usage)?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let no_table = args.iter().any(|a| a == "--no-table");
    let program = TypedProgram::from_source(&src)
        .map_err(|e| pretty(&src, e))?
        .with_tabling(!no_table);

    match command.as_str() {
        "check" => check(&program),
        "run" => execute(&program, args, false),
        "audit" => execute(&program, args, true),
        "subtype" => subtype(program, &src, args),
        "match" => match_cmd(program, &src, args),
        "filter" => filter_cmd(program, args),
        "export" => {
            print!("{}", subtype_lp::parser::unparse(program.module()));
            Ok(())
        }
        "info" => info(&program),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn pretty(src: &str, e: subtype_lp::Error) -> String {
    match e {
        subtype_lp::Error::Parse(p) => p.render(src),
        other => other.to_string(),
    }
}

fn check(program: &TypedProgram) -> Result<(), String> {
    let n_clauses = program.module().clauses.len();
    let n_queries = program.module().queries.len();
    program.check_all().map_err(|e| e.to_string())?;
    println!("well-typed: {n_clauses} clause(s), {n_queries} query(ies)");
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn execute(program: &TypedProgram, args: &[String], auditing: bool) -> Result<(), String> {
    program.check_all().map_err(|e| e.to_string())?;
    let query = flag_value(args, "-q").unwrap_or(0);
    let max = flag_value(args, "-n").unwrap_or(10);
    let queries = &program.module().queries;
    if queries.is_empty() {
        return Err("the program contains no queries".into());
    }
    if query >= queries.len() {
        return Err(format!(
            "query index {query} out of range (program has {})",
            queries.len()
        ));
    }
    let hints = &queries[query].hints;
    if auditing {
        let report = program.audit_query(
            query,
            AuditConfig {
                max_solutions: max,
                ..AuditConfig::default()
            },
        );
        for sol in &report.solutions {
            print_solution(program, query, sol);
        }
        println!(
            "audited {} resolvent(s): {} violation(s), answers {}",
            report.resolvents_checked,
            report.violations.len(),
            if report.answers_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            }
        );
        if !report.is_clean() {
            return Err("consistency violations detected".into());
        }
    } else {
        let solutions = program.run_query(query, max);
        if solutions.is_empty() {
            println!("no.");
        }
        for sol in &solutions {
            print_solution(program, query, sol);
        }
    }
    let _ = hints;
    Ok(())
}

fn print_solution(program: &TypedProgram, query: usize, sol: &subtype_lp::engine::Solution) {
    let q = &program.module().queries[query];
    let mut parts = Vec::new();
    for (v, name) in q.hints.iter() {
        let value = sol.answer.resolve(&subtype_lp::term::Term::Var(v));
        let shown = program.display_with(&value, &q.hints).to_string();
        if shown != name {
            parts.push(format!("{name} = {shown}"));
        }
    }
    parts.sort();
    if parts.is_empty() {
        println!("yes.");
    } else {
        println!("{}.", parts.join(", "));
    }
}

fn subtype(program: TypedProgram, src: &str, args: &[String]) -> Result<(), String> {
    let sup_src = args.get(2).ok_or_else(usage)?;
    let sub_src = args.get(3).ok_or_else(usage)?;
    let naive = args.iter().any(|a| a == "--naive");
    let tabled = args.iter().all(|a| a != "--no-table");
    let mut loader = program.into_loader();
    let (sup, _) = loader
        .parse_type(sup_src)
        .map_err(|e| format!("supertype: {e}"))?;
    let (sub, _) = loader
        .parse_type(sub_src)
        .map_err(|e| format!("subtype: {e}"))?;
    let module = loader.finish();
    let cs = ConstraintSet::from_module(&module).map_err(|e| e.to_string())?;
    if naive {
        let prover = NaiveProver::new(&module.sig, &cs);
        let outcome = prover.prove(&sup, &sub);
        println!("naive SLD over H_C: {outcome:?}");
        return Ok(());
    }
    let checked = cs.checked(&module.sig).map_err(|e| e.to_string())?;
    let table = RefCell::new(ProofTable::new());
    let proof = if tabled {
        TabledProver::new(&module.sig, &checked, &table).subtype(&sup, &sub)
    } else {
        Prover::new(&module.sig, &checked).subtype(&sup, &sub)
    };
    let verdict = match &proof {
        subtype_lp::core::Proof::Proved(answer) => {
            let witness: Vec<String> = answer
                .iter()
                .map(|(v, t)| format!("_G{} = {}", v.0, TermDisplay::new(t, &module.sig)))
                .collect();
            if witness.is_empty() {
                "derivable".to_string()
            } else {
                format!("derivable with {}", witness.join(", "))
            }
        }
        subtype_lp::core::Proof::Refuted => "not derivable (exhaustive search)".to_string(),
        subtype_lp::core::Proof::Unknown => "inconclusive (search budget)".to_string(),
    };
    println!(
        "{} >= {}: {verdict}",
        TermDisplay::new(&sup, &module.sig),
        TermDisplay::new(&sub, &module.sig)
    );
    let _ = src;
    Ok(())
}

fn match_cmd(program: TypedProgram, _src: &str, args: &[String]) -> Result<(), String> {
    let ty_src = args.get(2).ok_or_else(usage)?;
    let term_src = args.get(3).ok_or_else(usage)?;
    let mut loader = program.into_loader();
    let (ty, ty_hints) = loader
        .parse_type(ty_src)
        .map_err(|e| format!("type: {e}"))?;
    let (term, mut hints) = loader
        .parse_program_term(term_src)
        .map_err(|e| format!("term: {e}"))?;
    // Type and term were parsed in separate scopes, so their variables are
    // distinct; merge the hint tables for display.
    for (v, name) in ty_hints.iter() {
        hints.insert(v, name);
    }
    let module = loader.finish();
    let cs = ConstraintSet::from_module(&module)
        .map_err(|e| e.to_string())?
        .checked(&module.sig)
        .map_err(|e| e.to_string())?;
    match match_type(&module.sig, &cs, &ty, &term) {
        MatchOutcome::Typing(theta) => {
            if theta.is_empty() {
                println!("match: {{}} (the empty typing)");
            } else {
                let bindings: Vec<String> = theta
                    .iter()
                    .map(|(v, t)| {
                        let name = hints
                            .get(v)
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("_G{}", v.0));
                        format!(
                            "{name} ↦ {}",
                            TermDisplay::new(t, &module.sig).with_hints(&hints)
                        )
                    })
                    .collect();
                println!("match: {{{}}}", bindings.join(", "));
            }
        }
        MatchOutcome::Fail => println!("match: fail (no typing exists)"),
        MatchOutcome::Bottom => println!("match: ⊥ (no unique most general typing)"),
    }
    Ok(())
}

fn filter_cmd(program: TypedProgram, args: &[String]) -> Result<(), String> {
    let from_src = args.get(2).ok_or_else(usage)?;
    let to_src = args.get(3).ok_or_else(usage)?;
    let mut loader = program.into_loader();
    let (from, _) = loader
        .parse_type(from_src)
        .map_err(|e| format!("from: {e}"))?;
    let (to, _) = loader.parse_type(to_src).map_err(|e| format!("to: {e}"))?;
    let mut module = loader.finish();
    let cs = ConstraintSet::from_module(&module)
        .map_err(|e| e.to_string())?
        .checked(&module.sig)
        .map_err(|e| e.to_string())?;
    let lib = subtype_lp::core::build_filter(&mut module.sig, &cs, &from, &to, &mut module.gen)
        .map_err(|e| e.to_string())?;
    for pt in &lib.pred_types {
        println!("PRED {}.", TermDisplay::new(pt, &module.sig));
    }
    for c in &lib.clauses {
        let head = TermDisplay::new(&c.head, &module.sig);
        if c.body.is_empty() {
            println!("{head}.");
        } else {
            let body: Vec<String> = c
                .body
                .iter()
                .map(|b| TermDisplay::new(b, &module.sig).to_string())
                .collect();
            println!("{head} :- {}.", body.join(", "));
        }
    }
    Ok(())
}

fn info(program: &TypedProgram) -> Result<(), String> {
    let m = program.module();
    let sig = &m.sig;
    use subtype_lp::term::SymKind;
    let names = |kind: SymKind| -> Vec<String> {
        sig.symbols_of_kind(kind)
            .map(|s| match sig.arity(s) {
                Some(n) => format!("{}/{n}", sig.name(s)),
                None => sig.name(s).to_string(),
            })
            .collect()
    };
    println!("function symbols: {}", names(SymKind::Func).join(", "));
    println!("type constructors: {}", names(SymKind::TypeCtor).join(", "));
    println!("predicates:        {}", names(SymKind::Pred).join(", "));
    println!("constraints:");
    for c in program.constraints().as_set().constraints() {
        println!(
            "  {} >= {}",
            TermDisplay::new(&c.lhs, sig),
            TermDisplay::new(&c.rhs, sig)
        );
    }
    println!("predicate types:");
    for (_, t) in program.pred_types().iter() {
        println!("  {}", TermDisplay::new(t, sig));
    }
    println!(
        "{} clause(s), {} query(ies)",
        m.clauses.len(),
        m.queries.len()
    );
    Ok(())
}
