//! `slp` — the subtype-lp command-line interface.
//!
//! ```text
//! slp check   FILE... [--jobs N] [--verify-witnesses]
//!                                  type-check every clause and query
//! slp explain FILE PRED [--format json|human]
//!                                  show, per clause/query of PRED, either a
//!                                  numbered replay of the subtype derivation
//!                                  (the proof witness) or a minimal failing
//!                                  core explaining why checking refused it
//! slp lint    FILE... [--jobs N] [--deny warnings] [--format json]
//!                                  run the static analyzer (dead clauses,
//!                                  empty types, head condition, unused
//!                                  symbols, overlapping heads, …)
//! slp run     FILE [-q N] [-n N]   run a query (after checking)
//! slp audit   FILE [-q N] [-n N] [--modes] [--jobs N]
//!                                  run with Theorem 6 consistency auditing;
//!                                  `--modes` additionally runs the fixpoint
//!                                  mode analysis (E0601/W0602/W0603/E0604)
//!                                  and checks every resolvent's input
//!                                  positions stay ground
//! slp subtype FILE SUP SUB         decide SUP >= SUB (deterministic prover)
//! slp match   FILE TYPE TERM       evaluate match(TYPE, TERM)
//! slp filter  FILE FROM TO         generate a filtering predicate (§7)
//! slp export  FILE                 print the module in canonical syntax
//! slp info    FILE                 summarize declarations
//! ```
//!
//! `check --verify-witnesses` audits the proof table after checking: every
//! cached `Proved` entry is replayed step-by-step through
//! [`witness::validate_in`](subtype_lp::core::witness::validate_in),
//! independently of the prover that built it. A clean audit changes
//! nothing (stdout stays byte-identical); any entry that fails to replay
//! is an `E0301` error on stderr with exit code 2. The tallies surface as
//! the `witness_validated` / `witness_invalid` counters under `--stats`.
//!
//! `check` and `lint` accept many files (and `*`/`?` globs, for shells that
//! do not expand them) and fan the batch out across `--jobs N` worker
//! threads (default: one per core). Output is collected per file and
//! emitted in input order, so a parallel run is byte-identical to the
//! serial one. With a single file, `check` parallelizes across *clauses*
//! instead, its workers sharing one lock-free seqlocked proof table.
//!
//! Stream discipline: results (well-typed summaries, lint findings, JSON)
//! go to **stdout**; every error — usage mistakes, unreadable files, parse
//! and type errors — is rendered to **stderr**. Unknown or malformed flags
//! exit with code 2 and a usage hint instead of being ignored. Exit codes:
//! 0 clean, 1 for warnings under `lint --deny warnings`, 2 for errors; a
//! multi-file batch exits with the worst per-file code.
//!
//! Observability: `check`, `lint`, `run` and `audit` accept `--stats`
//! (emit one metrics document — human-readable, or the stable
//! `slp-metrics/1` JSON schema under `--format json` — on **stderr** after
//! the results; stdout is byte-identical to a run without the flag) and
//! `--trace FILE` (append-free JSONL span log of subtype proofs, table
//! traffic, cmatch expansions and clause checks). One registry serves the
//! whole invocation, shared by every file in a batch and every worker
//! thread.

use std::collections::BTreeMap;
use std::process::ExitCode;

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::core::diag::{self, Diagnostic};
use subtype_lp::core::lint::{
    clause_check_diagnostic, decl_diagnostic, lint_module_obs, mode_diagnostics,
    query_check_diagnostic, LintOptions,
};
use subtype_lp::core::{
    match_type, mode_string, par, ConstraintSet, Counter, FaultPlan, MatchOutcome, MetricsRegistry,
    ModeAnalysis, NaiveProver, ProofTable, Prover, ServeConfig, ServeSession, ShardedProofTable,
    TabledProver, Timer,
};
use subtype_lp::parser::{parse_module, Module};
use subtype_lp::term::TermDisplay;
use subtype_lp::TypedProgram;

use std::cell::RefCell;
use std::io::Write as _;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("slp: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:\n  slp check FILE... [--jobs N] [--verify-witnesses] [--stats]\n            [--format json|human] [--trace FILE]\n  slp explain FILE PRED [--format json|human] [--stats] [--trace FILE]\n  slp lint FILE... [--jobs N] [--deny warnings] [--format json|human]\n           [--stats] [--trace FILE]\n  slp run FILE [-q QUERY] [-n MAX] [--stats] [--format json|human] [--trace FILE]\n  slp audit FILE [-q QUERY] [-n MAX] [--modes] [--jobs N] [--stats]\n            [--format json|human] [--trace FILE]\n  slp serve [--stdio | --socket PATH] [--jobs N] [--faults SPEC]\n            [--budget N] [--deadline-ms N] [--stats] [--trace FILE]\n  slp subtype FILE SUPERTYPE SUBTYPE [--naive]\n  slp match FILE TYPE TERM\n  slp filter FILE FROM_TYPE TO_TYPE\n  slp export FILE\n  slp info FILE\n\nAll commands accept --no-table to disable subtype-proof tabling.\n`check` and `lint` accept several FILEs (and simple *|? globs); the batch\nruns on --jobs N worker threads (default: all cores) with output in input\norder, byte-identical to a serial run.\nResults go to stdout; errors are rendered to stderr.\n--stats emits one metrics document on stderr after the results\n(`slp-metrics/1` JSON under --format json); --trace FILE writes a JSONL\nspan log of prover/table/checker events.\nExit codes: 0 clean, 1 warnings under --deny warnings, 2 errors."
        .to_string()
}

// ---------------------------------------------------------------------------
// Strict argument parsing
// ---------------------------------------------------------------------------

/// Parsed command line: the command, its positional operands in order, and
/// its flags. Unknown flags are rejected up front — a typo like
/// `--deny-warnings` or `--job` must not silently run without the option.
struct ParsedArgs {
    command: String,
    operands: Vec<String>,
    flags: BTreeMap<String, Option<String>>,
}

impl ParsedArgs {
    fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).and_then(|v| v.as_deref())
    }
}

/// Per-command flag table: `(flag, takes_value)`.
fn flag_spec(command: &str) -> Option<&'static [(&'static str, bool)]> {
    Some(match command {
        "check" => &[
            ("--jobs", true),
            ("--no-table", false),
            ("--stats", false),
            ("--format", true),
            ("--trace", true),
            ("--verify-witnesses", false),
        ],
        "explain" => &[
            ("--format", true),
            ("--no-table", false),
            ("--stats", false),
            ("--trace", true),
        ],
        "lint" => &[
            ("--jobs", true),
            ("--deny", true),
            ("--format", true),
            ("--no-table", false),
            ("--stats", false),
            ("--trace", true),
        ],
        "run" => &[
            ("-q", true),
            ("-n", true),
            ("--no-table", false),
            ("--stats", false),
            ("--format", true),
            ("--trace", true),
        ],
        "audit" => &[
            ("-q", true),
            ("-n", true),
            ("--modes", false),
            ("--jobs", true),
            ("--no-table", false),
            ("--stats", false),
            ("--format", true),
            ("--trace", true),
        ],
        "serve" => &[
            ("--stdio", false),
            ("--socket", true),
            ("--jobs", true),
            ("--faults", true),
            ("--budget", true),
            ("--deadline-ms", true),
            ("--stats", false),
            ("--format", true),
            ("--trace", true),
        ],
        "subtype" => &[("--naive", false), ("--no-table", false)],
        "match" | "filter" | "export" | "info" => &[("--no-table", false)],
        _ => return None,
    })
}

fn parse_args(args: &[String]) -> Result<ParsedArgs, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let Some(spec) = flag_spec(command) else {
        return Err(format!("unknown command `{command}`\n{}", usage()));
    };
    let mut operands = Vec::new();
    let mut flags = BTreeMap::new();
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a.starts_with('-') && a.len() > 1 {
            match spec.iter().find(|(name, _)| name == a) {
                Some((name, true)) => {
                    let value = rest
                        .next()
                        .ok_or_else(|| format!("flag `{name}` expects a value\n{}", usage()))?;
                    flags.insert(name.to_string(), Some(value.clone()));
                }
                Some((name, false)) => {
                    flags.insert(name.to_string(), None);
                }
                None => {
                    return Err(format!(
                        "unknown flag `{a}` for `slp {command}`\n{}",
                        usage()
                    ));
                }
            }
        } else {
            operands.push(a.clone());
        }
    }
    Ok(ParsedArgs {
        command: command.clone(),
        operands,
        flags,
    })
}

/// `--jobs N`: 0 (or the flag missing) means one worker per available core.
fn jobs_of(parsed: &ParsedArgs) -> Result<usize, String> {
    match parsed.value("--jobs") {
        None => Ok(par::effective_jobs(0)),
        Some(v) => v
            .parse::<usize>()
            .map(par::effective_jobs)
            .map_err(|_| format!("--jobs expects a number, got `{v}`\n{}", usage())),
    }
}

// ---------------------------------------------------------------------------
// Glob expansion (for shells that hand patterns through verbatim)
// ---------------------------------------------------------------------------

/// Matches `pattern` (with `*` and `?`) against a whole file name.
fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    fn go(p: &[char], n: &[char]) -> bool {
        match p.first() {
            None => n.is_empty(),
            Some('*') => go(&p[1..], n) || (!n.is_empty() && go(p, &n[1..])),
            Some('?') => !n.is_empty() && go(&p[1..], &n[1..]),
            Some(c) => n.first() == Some(c) && go(&p[1..], &n[1..]),
        }
    }
    go(&p, &n)
}

/// Expands one operand: a literal path passes through; a basename pattern
/// containing `*`/`?` is matched against its directory's entries (sorted,
/// so batches are deterministic).
fn expand_operand(op: &str) -> Result<Vec<String>, String> {
    if !op.contains('*') && !op.contains('?') {
        return Ok(vec![op.to_string()]);
    }
    let (dir, pattern) = match op.rsplit_once('/') {
        Some((d, p)) => (d.to_string(), p),
        None => (".".to_string(), op),
    };
    if dir.contains('*') || dir.contains('?') {
        return Err(format!(
            "glob `{op}`: wildcards are only supported in the file name"
        ));
    }
    let entries =
        std::fs::read_dir(&dir).map_err(|e| format!("glob `{op}`: cannot read {dir}: {e}"))?;
    let mut matches = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("glob `{op}`: {e}"))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if glob_match(pattern, &name) {
            matches.push(if dir == "." {
                name.into_owned()
            } else {
                format!("{dir}/{name}")
            });
        }
    }
    if matches.is_empty() {
        return Err(format!("glob `{op}` matches no files"));
    }
    matches.sort();
    Ok(matches)
}

fn expand_files(operands: &[String]) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for op in operands {
        files.extend(expand_operand(op)?);
    }
    Ok(files)
}

// ---------------------------------------------------------------------------
// The batch pipeline
// ---------------------------------------------------------------------------

/// One file's collected output: emitted (stdout then stderr) strictly in
/// input order after the parallel workers have finished.
struct FileReport {
    stdout: String,
    stderr: String,
    code: u8,
}

/// Runs `worker` over `files` on up to `jobs` threads and emits the reports
/// in input order. The overall exit code is the worst per-file code.
fn run_batch(
    files: &[String],
    jobs: usize,
    worker: impl Fn(&str) -> FileReport + Sync,
) -> ExitCode {
    let reports = par::run_indexed(jobs, files, |_, f| worker(f));
    let mut worst = 0u8;
    for r in &reports {
        print!("{}", r.stdout);
        eprint!("{}", r.stderr);
        worst = worst.max(r.code);
    }
    ExitCode::from(worst)
}

/// `--format json|human` (shared by lint findings and `--stats` output).
fn json_format(parsed: &ParsedArgs) -> Result<bool, String> {
    match parsed.value("--format") {
        Some("json") => Ok(true),
        Some("human") | None => Ok(false),
        Some(other) => Err(format!(
            "--format expects `json` or `human`, got {other}\n{}",
            usage()
        )),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_args(args)?;
    let no_table = parsed.has("--no-table");

    // One registry per invocation: every file in a batch, every worker
    // thread, and every table backend counts into it, so `--stats` is a
    // single coherent document rather than a merge of per-table views.
    let obs = MetricsRegistry::shared();
    if let Some(path) = parsed.value("--trace") {
        let sink = std::fs::File::create(path)
            .map_err(|e| format!("--trace: cannot create {path}: {e}"))?;
        obs.set_trace(Box::new(std::io::BufWriter::new(sink)));
    }

    let code = dispatch(&parsed, no_table, &obs)?;

    // Results are already on stdout; the stats document goes to stderr so
    // stdout stays byte-identical to a run without `--stats`.
    if let Some(mut sink) = obs.take_trace() {
        let _ = sink.flush();
    }
    if parsed.has("--stats") {
        let snapshot = obs.snapshot();
        if json_format(&parsed)? {
            eprintln!("{}", snapshot.render_json());
        } else {
            eprint!("{}", snapshot.render_human());
        }
    }
    Ok(code)
}

fn dispatch(
    parsed: &ParsedArgs,
    no_table: bool,
    obs: &Arc<MetricsRegistry>,
) -> Result<ExitCode, String> {
    match parsed.command.as_str() {
        "check" => {
            // Validate `--format` up front even though check results ignore
            // it; a typo must fail loudly, not silently drop the stats doc.
            json_format(parsed)?;
            let files = expand_files(require_files(parsed)?)?;
            let jobs = jobs_of(parsed)?;
            // Files are the unit of parallelism for a batch; a single file
            // parallelizes across its clauses instead (sharing one sharded
            // proof table between the workers).
            let (file_jobs, clause_jobs) = if files.len() > 1 {
                (jobs, 1)
            } else {
                (1, jobs)
            };
            let multi = files.len() > 1;
            let verify = parsed.has("--verify-witnesses");
            Ok(run_batch(&files, file_jobs, |file| {
                check_file(file, clause_jobs, no_table, multi, verify, obs)
            }))
        }
        "lint" => {
            let files = expand_files(require_files(parsed)?)?;
            let jobs = jobs_of(parsed)?;
            let json = json_format(parsed)?;
            let deny_warnings = match parsed.value("--deny") {
                Some("warnings") => true,
                None => false,
                Some(other) => {
                    return Err(format!(
                        "--deny expects `warnings`, got {other}\n{}",
                        usage()
                    ))
                }
            };
            Ok(run_batch(&files, jobs, |file| {
                lint_file(file, no_table, json, deny_warnings, obs)
            }))
        }
        "serve" => serve_cmd(parsed, obs),
        _ => run_single(parsed, no_table, obs),
    }
}

/// `slp serve`: the persistent JSON-lines checking daemon (core::serve).
/// `--stdio` (the default) answers requests from stdin on stdout;
/// `--socket PATH` binds a Unix socket and serves connections one at a
/// time. `--faults SPEC` (e.g. `panic@3,shed@5`) injects the
/// deterministic fault plan used by the replay tests.
fn serve_cmd(parsed: &ParsedArgs, obs: &Arc<MetricsRegistry>) -> Result<ExitCode, String> {
    json_format(parsed)?; // fail typos loudly even though responses are always JSON
    if parsed.has("--stdio") && parsed.value("--socket").is_some() {
        return Err(format!("--stdio and --socket are exclusive\n{}", usage()));
    }
    let faults = match parsed.value("--faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?,
        None => FaultPlan::none(),
    };
    let parse_num = |flag: &str| -> Result<Option<u64>, String> {
        parsed
            .value(flag)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("{flag} expects a number, got `{v}`\n{}", usage()))
            })
            .transpose()
    };
    let config = ServeConfig {
        jobs: jobs_of(parsed)?,
        default_budget: parse_num("--budget")?,
        default_deadline_ms: parse_num("--deadline-ms")?,
        faults,
        ..ServeConfig::default()
    };
    let mut session = ServeSession::with_metrics(config, obs.clone());

    // Injected (and genuinely unexpected) panics are contained at the
    // request boundary and answered in-band as `status:"panic"`; the
    // default hook would interleave a backtrace with the response stream
    // on stderr, so silence it for the daemon's lifetime.
    std::panic::set_hook(Box::new(|_| {}));

    match parsed.value("--socket") {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            session
                .run(stdin.lock(), stdout.lock())
                .map_err(|e| format!("serve: {e}"))?;
        }
        Some(path) => {
            let _ = std::fs::remove_file(path); // stale socket from a crash
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| format!("serve: cannot bind {path}: {e}"))?;
            // Connections are served one at a time: the session (and its
            // warm table) is shared across them, and `shutdown` ends the
            // daemon, not just the connection.
            while !session.closed() {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| format!("serve: accept: {e}"))?;
                let reader =
                    std::io::BufReader::new(stream.try_clone().map_err(|e| format!("serve: {e}"))?);
                session
                    .run(reader, stream)
                    .map_err(|e| format!("serve: {e}"))?;
            }
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn require_files(parsed: &ParsedArgs) -> Result<&[String], String> {
    if parsed.operands.is_empty() {
        return Err(format!(
            "`slp {}` needs at least one FILE\n{}",
            parsed.command,
            usage()
        ));
    }
    Ok(&parsed.operands)
}

/// Type-checks one file into a report (never prints directly: reports are
/// emitted in input order by the batch driver).
fn check_file(
    file: &str,
    clause_jobs: usize,
    no_table: bool,
    multi: bool,
    verify_witnesses: bool,
    obs: &Arc<MetricsRegistry>,
) -> FileReport {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            return FileReport {
                stdout: String::new(),
                stderr: format!("slp: cannot read {file}: {e}\n"),
                code: 2,
            }
        }
    };
    obs.incr(Counter::FilesProcessed);
    let parse_span = obs.start(Timer::Parse);
    let parsed = parse_module(&src);
    drop(parse_span);
    let module = match parsed {
        Ok(m) => m,
        Err(e) => return error_report(&[Diagnostic::from(&e)], &src, file),
    };
    let validate_span = obs.start(Timer::Validate);
    let built = TypedProgram::from_module_with_metrics(module.clone(), obs.clone());
    drop(validate_span);
    let program = match built {
        Ok(p) => p.with_tabling(!no_table),
        Err(e) => return error_report(&program_diagnostics(&module, &e), &src, file),
    };
    let diags = check_program_diags(&program, clause_jobs, no_table, verify_witnesses);
    if !diags.is_empty() {
        return error_report(&diags, &src, file);
    }
    let prefix = if multi {
        format!("{file}: ")
    } else {
        String::new()
    };
    FileReport {
        stdout: format!(
            "{prefix}well-typed: {} clause(s), {} query(ies)\n",
            program.module().clauses.len(),
            program.module().queries.len()
        ),
        stderr: String::new(),
        code: 0,
    }
}

/// Lints one file into a report. Findings are the command's *results* and
/// stay on stdout (in both formats); only I/O failures go to stderr.
fn lint_file(
    file: &str,
    no_table: bool,
    json: bool,
    deny_warnings: bool,
    obs: &Arc<MetricsRegistry>,
) -> FileReport {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            return FileReport {
                stdout: String::new(),
                stderr: format!("slp: cannot read {file}: {e}\n"),
                code: 2,
            }
        }
    };
    obs.incr(Counter::FilesProcessed);
    let parse_span = obs.start(Timer::Parse);
    let parsed = parse_module(&src);
    drop(parse_span);
    let diags = match parsed {
        Err(e) => vec![Diagnostic::from(&e)],
        Ok(m) => lint_module_obs(
            &m,
            &LintOptions {
                tabling: !no_table,
                ..LintOptions::default()
            },
            Some(obs),
        ),
    };
    let stdout = if json {
        diag::render_json_all(&diags, &src, file)
    } else {
        diag::render_human_all(&diags, &src, file)
    };
    let (errors, warnings) = diag::counts(&diags);
    FileReport {
        stdout,
        stderr: String::new(),
        code: lint_exit_code(errors, warnings, deny_warnings),
    }
}

/// Exit code of one linted file. Errors always win: a file with both
/// errors and denied warnings exits 2, never 1 — and because
/// [`run_batch`] aggregates the batch code as a per-file maximum, the
/// same ordering holds across files.
fn lint_exit_code(errors: usize, warnings: usize, deny_warnings: bool) -> u8 {
    if errors > 0 {
        2
    } else if deny_warnings && warnings > 0 {
        1
    } else {
        0
    }
}

/// Renders error diagnostics into a stderr report with exit code 2.
fn error_report(diags: &[Diagnostic], src: &str, file: &str) -> FileReport {
    let mut ds = diags.to_vec();
    diag::sort(&mut ds);
    FileReport {
        stdout: String::new(),
        stderr: diag::render_human_all(&ds, src, file),
        code: 2,
    }
}

// ---------------------------------------------------------------------------
// Single-file commands (run/audit/subtype/match/filter/export/info)
// ---------------------------------------------------------------------------

fn run_single(
    parsed: &ParsedArgs,
    no_table: bool,
    obs: &Arc<MetricsRegistry>,
) -> Result<ExitCode, String> {
    let file = parsed
        .operands
        .first()
        .ok_or_else(|| format!("`slp {}` needs a FILE\n{}", parsed.command, usage()))?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    obs.incr(Counter::FilesProcessed);
    let parse_span = obs.start(Timer::Parse);
    let parse_result = parse_module(&src);
    drop(parse_span);
    let module = match parse_result {
        Ok(m) => m,
        Err(e) => return Ok(report_errors(&[Diagnostic::from(&e)], &src, file)),
    };
    let validate_span = obs.start(Timer::Validate);
    let built = TypedProgram::from_module_with_metrics(module.clone(), obs.clone());
    drop(validate_span);
    let program = match built {
        Ok(p) => p.with_tabling(!no_table),
        Err(e) => return Ok(report_errors(&program_diagnostics(&module, &e), &src, file)),
    };

    match parsed.command.as_str() {
        "run" => execute(&program, &src, file, parsed, false),
        "audit" => execute(&program, &src, file, parsed, true),
        "explain" => explain_cmd(&program, &src, file, parsed),
        "subtype" => subtype(program, parsed).map(|()| ExitCode::SUCCESS),
        "match" => match_cmd(program, parsed).map(|()| ExitCode::SUCCESS),
        "filter" => filter_cmd(program, parsed).map(|()| ExitCode::SUCCESS),
        "export" => {
            print!("{}", subtype_lp::parser::unparse(program.module()));
            Ok(ExitCode::SUCCESS)
        }
        "info" => info(&program).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// Renders error diagnostics to stderr and yields exit code 2.
fn report_errors(diags: &[Diagnostic], src: &str, file: &str) -> ExitCode {
    let r = error_report(diags, src, file);
    eprint!("{}", r.stderr);
    ExitCode::from(r.code)
}

/// Maps a program-construction failure onto span-carrying diagnostics.
fn program_diagnostics(module: &Module, e: &subtype_lp::Error) -> Vec<Diagnostic> {
    match e {
        subtype_lp::Error::Parse(p) => vec![Diagnostic::from(p)],
        subtype_lp::Error::Declarations(d) => vec![decl_diagnostic(module, d)],
        // `from_module` only produces `Check` for predicate-type-table
        // errors (duplicate declarations etc.), whose spans the diagnostic
        // constructor resolves itself; the index is not a clause index.
        subtype_lp::Error::Check(errors) => errors
            .iter()
            .map(|(i, e)| clause_check_diagnostic(module, *i, e))
            .collect(),
    }
}

/// Diagnostics for every ill-typed clause and query, or empty when the
/// program is well-typed. With `clause_jobs > 1` the clauses (and queries)
/// are checked across the worker pool, sharing one sharded proof table;
/// the diagnostics come back in clause order either way, so the rendered
/// output is byte-identical to the serial run.
///
/// With `verify_witnesses`, whichever proof table the check populated is
/// audited afterwards: every cached `Proved` entry is replayed through
/// `witness::validate_in`, and any replay failure becomes an `E0301`
/// diagnostic. A clean audit adds nothing, so stdout stays byte-identical
/// across `--jobs` counts.
fn check_program_diags(
    program: &TypedProgram,
    clause_jobs: usize,
    no_table: bool,
    verify_witnesses: bool,
) -> Vec<Diagnostic> {
    let module = program.module();
    let mut diags = Vec::new();
    // The sharded table counts into the program's registry, so serial
    // and clause-parallel runs report through the same document.
    let shared =
        (clause_jobs > 1).then(|| ShardedProofTable::with_metrics(program.metrics().clone()));
    if let Some(shared) = &shared {
        let table = (!no_table).then_some(shared);
        if let Err(subtype_lp::Error::Check(errs)) =
            program.check_clauses_parallel(table, clause_jobs)
        {
            diags.extend(
                errs.iter()
                    .map(|(i, e)| clause_check_diagnostic(module, *i, e)),
            );
        }
        if let Err(subtype_lp::Error::Check(errs)) =
            program.check_queries_parallel(table, clause_jobs)
        {
            diags.extend(
                errs.iter()
                    .map(|(i, e)| query_check_diagnostic(module, *i, e)),
            );
        }
    } else {
        if let Err(subtype_lp::Error::Check(errs)) = program.check_clauses() {
            diags.extend(
                errs.iter()
                    .map(|(i, e)| clause_check_diagnostic(module, *i, e)),
            );
        }
        if let Err(subtype_lp::Error::Check(errs)) = program.check_queries() {
            diags.extend(
                errs.iter()
                    .map(|(i, e)| query_check_diagnostic(module, *i, e)),
            );
        }
    }
    if verify_witnesses {
        let constraints = program.constraints().as_set().constraints();
        let (validated, invalid) = match &shared {
            Some(t) => t.validate_witnesses(&module.sig, constraints),
            None => program
                .proof_table()
                .borrow()
                .validate_witnesses(&module.sig, constraints),
        };
        if invalid > 0 {
            diags.push(
                Diagnostic::error(
                    "E0301",
                    format!(
                        "witness audit failed: {invalid} of {} cached subtype proof(s) did not \
                         replay",
                        validated + invalid
                    ),
                )
                .note(
                    "every `Proved` proof-table entry must replay step-by-step through \
                     witness::validate_in; a failure here means the table holds a verdict \
                     its own derivation chain cannot justify",
                ),
            );
        }
    }
    diags
}

fn flag_usize(parsed: &ParsedArgs, flag: &str) -> Result<Option<usize>, String> {
    match parsed.value(flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} expects a number, got `{v}`\n{}", usage())),
    }
}

fn execute(
    program: &TypedProgram,
    src: &str,
    file: &str,
    parsed: &ParsedArgs,
    auditing: bool,
) -> Result<ExitCode, String> {
    // `audit --jobs N` parallelizes the pre-execution type check across
    // clauses (sharing a sharded proof table); the audit itself is serial
    // and its output byte-identical at every job count.
    let jobs = if auditing { jobs_of(parsed)? } else { 1 };
    let diags = check_program_diags(program, jobs, !program.tabling(), false);
    if !diags.is_empty() {
        return Ok(report_errors(&diags, src, file));
    }
    let query = flag_usize(parsed, "-q")?.unwrap_or(0);
    let max = flag_usize(parsed, "-n")?.unwrap_or(10);
    let queries = &program.module().queries;
    if queries.is_empty() {
        return Err("the program contains no queries".into());
    }
    if query >= queries.len() {
        return Err(format!(
            "query index {query} out of range (program has {})",
            queries.len()
        ));
    }
    if auditing && parsed.has("--modes") {
        return audit_modes(program, src, file, parsed, query, max);
    }
    if auditing {
        let report = program.audit_query(
            query,
            AuditConfig {
                max_solutions: max,
                ..AuditConfig::default()
            },
        );
        for sol in &report.solutions {
            println!("{}", solution_line(program, query, sol));
        }
        println!(
            "audited {} resolvent(s): {} violation(s), answers {}",
            report.resolvents_checked,
            report.violations.len(),
            if report.answers_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            }
        );
        if !report.is_clean() {
            return Err("consistency violations detected".into());
        }
    } else {
        let solutions = program.run_query(query, max);
        if solutions.is_empty() {
            println!("no.");
        }
        for sol in &solutions {
            println!("{}", solution_line(program, query, sol));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `slp audit --modes`: the static mode report (the same `E0601`–`W0605`
/// findings `slp lint` emits, via the shared pass) followed by a moded
/// Theorem 6 audit — every resolvent, the initial query goals included,
/// must keep the selected atom's `+` positions ground. Findings are the
/// command's results and go to stdout in both formats.
fn audit_modes(
    program: &TypedProgram,
    src: &str,
    file: &str,
    parsed: &ParsedArgs,
    query: usize,
    max: usize,
) -> Result<ExitCode, String> {
    let json = json_format(parsed)?;
    let module = program.module();
    let sig = &module.sig;

    // The diagnostics pass below re-runs the analysis with observability
    // wired in (counters, trace spans); this silent run only supplies the
    // mode assignment the resolvent checks audit against.
    let report = ModeAnalysis::new(module).run();
    let diags = mode_diagnostics(
        module,
        program.constraints(),
        program.pred_types(),
        &LintOptions {
            tabling: program.tabling(),
            ..LintOptions::default()
        },
        Some(program.metrics().as_ref()),
    );
    let audit = program.audit_query_with_modes(
        query,
        AuditConfig {
            max_solutions: max,
            ..AuditConfig::default()
        },
        &report.modes,
    );

    let mode_rows: Vec<(String, String, bool)> = report
        .modes
        .iter()
        .map(|(&p, modes)| {
            (
                sig.name(p).to_string(),
                mode_string(modes),
                report.declared.contains(&p),
            )
        })
        .collect();
    let (errors, _) = diag::counts(&diags);
    let well_moded = errors == 0 && audit.is_well_moded();

    if json {
        let modes_json: Vec<String> = mode_rows
            .iter()
            .map(|(pred, modes, declared)| {
                format!(
                    "{{\"pred\":{},\"modes\":{},\"declared\":{declared}}}",
                    jstr(pred),
                    jstr(modes)
                )
            })
            .collect();
        let diags_json: Vec<String> = diags
            .iter()
            .map(|d| diag::render_json_one(d, src, file))
            .collect();
        let solutions_json: Vec<String> = audit
            .solutions
            .iter()
            .map(|sol| jstr(&solution_line(program, query, sol)))
            .collect();
        let violations_json: Vec<String> = audit
            .mode_violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"depth\":{},\"pred\":{},\"argument\":{},\"atom\":{}}}",
                    v.depth,
                    jstr(sig.name(v.pred)),
                    v.position + 1,
                    jstr(&program.display(&v.resolvent[0]).to_string())
                )
            })
            .collect();
        println!(
            "{{\"slp-audit-modes\":1,\"file\":{},\"query\":{query},\"modes\":[{}],\
             \"diagnostics\":[{}],\"solutions\":[{}],\"resolvents\":{},\
             \"violations\":{},\"answers_consistent\":{},\"mode_resolvents\":{},\
             \"mode_violations\":[{}],\"well_moded\":{well_moded}}}",
            jstr(file),
            modes_json.join(","),
            diags_json.join(","),
            solutions_json.join(","),
            audit.resolvents_checked,
            audit.violations.len(),
            audit.answers_consistent,
            audit.mode_resolvents,
            violations_json.join(",")
        );
    } else {
        println!(
            "mode report: {} predicate(s), {} declared, {} inferred",
            mode_rows.len(),
            report.declared.len(),
            mode_rows.len() - report.declared.len()
        );
        for (pred, modes, declared) in &mode_rows {
            println!(
                "  {pred}{modes}  [{}]",
                if *declared { "declared" } else { "inferred" }
            );
        }
        print!("{}", diag::render_human_all(&diags, src, file));
        for sol in &audit.solutions {
            println!("{}", solution_line(program, query, sol));
        }
        for v in &audit.mode_violations {
            println!(
                "mode violation at depth {}: input argument {} of `{}` is unbound in `{}`",
                v.depth,
                v.position + 1,
                sig.name(v.pred),
                program.display(&v.resolvent[0])
            );
        }
        println!(
            "audited {} resolvent(s): {} violation(s), answers {}",
            audit.resolvents_checked,
            audit.violations.len(),
            if audit.answers_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            }
        );
        println!(
            "mode-checked {} resolvent(s): {} mode violation(s)",
            audit.mode_resolvents,
            audit.mode_violations.len()
        );
    }

    if !audit.is_clean() {
        return Err("consistency violations detected".into());
    }
    if !well_moded {
        return Err("mode violations detected".into());
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders one solution in the `run`/`audit` answer format (`yes.` or
/// sorted `Name = value` bindings).
fn solution_line(
    program: &TypedProgram,
    query: usize,
    sol: &subtype_lp::engine::Solution,
) -> String {
    let q = &program.module().queries[query];
    let mut parts = Vec::new();
    for (v, name) in q.hints.iter() {
        let value = sol.answer.resolve(&subtype_lp::term::Term::Var(v));
        let shown = program.display_with(&value, &q.hints).to_string();
        if shown != name {
            parts.push(format!("{name} = {shown}"));
        }
    }
    parts.sort();
    if parts.is_empty() {
        "yes.".to_string()
    } else {
        format!("{}.", parts.join(", "))
    }
}

fn operand<'a>(parsed: &'a ParsedArgs, index: usize, what: &str) -> Result<&'a String, String> {
    parsed
        .operands
        .get(index)
        .ok_or_else(|| format!("`slp {}` needs {what}\n{}", parsed.command, usage()))
}

fn subtype(program: TypedProgram, parsed: &ParsedArgs) -> Result<(), String> {
    let sup_src = operand(parsed, 1, "a SUPERTYPE")?;
    let sub_src = operand(parsed, 2, "a SUBTYPE")?;
    let naive = parsed.has("--naive");
    let tabled = !parsed.has("--no-table");
    let obs = program.metrics().clone();
    let mut loader = program.into_loader();
    let (sup, _) = loader
        .parse_type(sup_src)
        .map_err(|e| format!("supertype: {e}"))?;
    let (sub, _) = loader
        .parse_type(sub_src)
        .map_err(|e| format!("subtype: {e}"))?;
    let module = loader.finish();
    let cs = ConstraintSet::from_module(&module).map_err(|e| e.to_string())?;
    if naive {
        let prover = NaiveProver::new(&module.sig, &cs);
        let outcome = prover.prove(&sup, &sub);
        println!("naive SLD over H_C: {outcome:?}");
        return Ok(());
    }
    let checked = cs.checked(&module.sig).map_err(|e| e.to_string())?;
    let table = RefCell::new(ProofTable::with_metrics(obs));
    let proof = if tabled {
        TabledProver::new(&module.sig, &checked, &table).subtype(&sup, &sub)
    } else {
        Prover::new(&module.sig, &checked).subtype(&sup, &sub)
    };
    let verdict = match &proof {
        subtype_lp::core::Proof::Proved(answer) => {
            let witness: Vec<String> = answer
                .iter()
                .map(|(v, t)| format!("_G{} = {}", v.0, TermDisplay::new(t, &module.sig)))
                .collect();
            if witness.is_empty() {
                "derivable".to_string()
            } else {
                format!("derivable with {}", witness.join(", "))
            }
        }
        subtype_lp::core::Proof::Refuted => "not derivable (exhaustive search)".to_string(),
        subtype_lp::core::Proof::Unknown => "inconclusive (search budget)".to_string(),
    };
    println!(
        "{} >= {}: {verdict}",
        TermDisplay::new(&sup, &module.sig),
        TermDisplay::new(&sub, &module.sig)
    );
    Ok(())
}

fn match_cmd(program: TypedProgram, parsed: &ParsedArgs) -> Result<(), String> {
    let ty_src = operand(parsed, 1, "a TYPE")?;
    let term_src = operand(parsed, 2, "a TERM")?;
    let mut loader = program.into_loader();
    let (ty, ty_hints) = loader
        .parse_type(ty_src)
        .map_err(|e| format!("type: {e}"))?;
    let (term, mut hints) = loader
        .parse_program_term(term_src)
        .map_err(|e| format!("term: {e}"))?;
    // Type and term were parsed in separate scopes, so their variables are
    // distinct; merge the hint tables for display.
    for (v, name) in ty_hints.iter() {
        hints.insert(v, name);
    }
    let module = loader.finish();
    let cs = ConstraintSet::from_module(&module)
        .map_err(|e| e.to_string())?
        .checked(&module.sig)
        .map_err(|e| e.to_string())?;
    match match_type(&module.sig, &cs, &ty, &term) {
        MatchOutcome::Typing(theta) => {
            if theta.is_empty() {
                println!("match: {{}} (the empty typing)");
            } else {
                let bindings: Vec<String> = theta
                    .iter()
                    .map(|(v, t)| {
                        let name = hints
                            .get(v)
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("_G{}", v.0));
                        format!(
                            "{name} ↦ {}",
                            TermDisplay::new(t, &module.sig).with_hints(&hints)
                        )
                    })
                    .collect();
                println!("match: {{{}}}", bindings.join(", "));
            }
        }
        MatchOutcome::Fail => println!("match: fail (no typing exists)"),
        MatchOutcome::Bottom => println!("match: ⊥ (no unique most general typing)"),
    }
    Ok(())
}

fn filter_cmd(program: TypedProgram, parsed: &ParsedArgs) -> Result<(), String> {
    let from_src = operand(parsed, 1, "a FROM_TYPE")?;
    let to_src = operand(parsed, 2, "a TO_TYPE")?;
    let mut loader = program.into_loader();
    let (from, _) = loader
        .parse_type(from_src)
        .map_err(|e| format!("from: {e}"))?;
    let (to, _) = loader.parse_type(to_src).map_err(|e| format!("to: {e}"))?;
    let mut module = loader.finish();
    let cs = ConstraintSet::from_module(&module)
        .map_err(|e| e.to_string())?
        .checked(&module.sig)
        .map_err(|e| e.to_string())?;
    let lib = subtype_lp::core::build_filter(&mut module.sig, &cs, &from, &to, &mut module.gen)
        .map_err(|e| e.to_string())?;
    for pt in &lib.pred_types {
        println!("PRED {}.", TermDisplay::new(pt, &module.sig));
    }
    for c in &lib.clauses {
        let head = TermDisplay::new(&c.head, &module.sig);
        if c.body.is_empty() {
            println!("{head}.");
        } else {
            let body: Vec<String> = c
                .body
                .iter()
                .map(|b| TermDisplay::new(b, &module.sig).to_string())
                .collect();
            println!("{head} :- {}.", body.join(", "));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// `slp explain` — checkable verdicts and minimal refutation cores
// ---------------------------------------------------------------------------

/// One derivation step rendered for output (both formats consume these).
struct StepLine {
    rule: &'static str,
    constraint: Option<usize>,
    goal: String,
}

/// One clause or query selected for explanation.
struct ExplainTarget<'a> {
    what: &'static str,
    index: usize,
    span: subtype_lp::parser::Span,
    hints: &'a subtype_lp::term::NameHints,
    explanation: subtype_lp::core::CheckExplanation,
}

/// Explains every clause and query of one predicate: a numbered replay of
/// the proof witness when checking succeeded, or the diagnostic plus the
/// 1-minimal refutation core when it did not. Explanations are the
/// command's *results*, so everything — including the rejection
/// diagnostics — goes to stdout, and a program that fails to type-check
/// still explains successfully (exit 0). Only usage, parse, declaration
/// and unknown-predicate errors exit 2.
fn explain_cmd(
    program: &TypedProgram,
    src: &str,
    file: &str,
    parsed: &ParsedArgs,
) -> Result<ExitCode, String> {
    use subtype_lp::term::{SymKind, Term};

    let pred_name = operand(parsed, 1, "a PRED name")?.clone();
    let json = json_format(parsed)?;
    let module = program.module();
    let sig = &module.sig;
    let pred = sig
        .lookup(&pred_name)
        .filter(|s| sig.kind(*s) == SymKind::Pred)
        .ok_or_else(|| format!("{file} declares no predicate `{pred_name}`"))?;

    let checker = program.checker();
    let mentions = |t: &Term| t.functor() == Some(pred);
    let mut targets = Vec::new();
    for (i, lc) in module.clauses.iter().enumerate() {
        if mentions(&lc.clause.head) || lc.clause.body.iter().any(&mentions) {
            targets.push(ExplainTarget {
                what: "clause",
                index: i,
                span: lc.span,
                hints: &lc.hints,
                explanation: checker.explain_clause(&lc.clause),
            });
        }
    }
    for (i, q) in module.queries.iter().enumerate() {
        if q.goals.iter().any(&mentions) {
            targets.push(ExplainTarget {
                what: "query",
                index: i,
                span: q.span,
                hints: &q.hints,
                explanation: checker.explain_query(&q.goals),
            });
        }
    }
    if targets.is_empty() {
        return Err(format!(
            "predicate `{pred_name}` has no clauses or queries in {file}"
        ));
    }

    let mut human = String::new();
    let mut items = Vec::new();
    let mut well_typed = 0usize;
    for t in &targets {
        let (verdict, section, item) = explain_target(program, src, file, t);
        if verdict == "well-typed" {
            well_typed += 1;
        }
        human.push_str(&section);
        items.push(item);
    }

    if json {
        println!(
            "{{\"slp-explain\":1,\"file\":{},\"predicate\":{},\"items\":[\n  {}\n]}}",
            jstr(file),
            jstr(&pred_name),
            items.join(",\n  ")
        );
    } else {
        print!("{human}");
        println!(
            "{file}: explained {} item(s) for `{pred_name}`: {} well-typed, {} rejected",
            targets.len(),
            well_typed,
            targets.len() - well_typed
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders one explanation target as `(verdict, human section, JSON item)`.
fn explain_target(
    program: &TypedProgram,
    src: &str,
    file: &str,
    t: &ExplainTarget,
) -> (&'static str, String, String) {
    use subtype_lp::core::witness;
    use subtype_lp::core::{Step, Witnessed};
    use subtype_lp::term::Term;

    let module = program.module();
    let sig = &module.sig;
    let constraints = program.constraints().as_set().constraints();
    let obs = program.metrics();

    let (line, _) = t.span.line_col(src);
    let quoted: String = src[t.span.start.min(src.len())..t.span.end.min(src.len())]
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");
    let disp = |term: &Term| TermDisplay::new(term, sig).to_string();
    let disp_hinted = |term: &Term| TermDisplay::new(term, sig).with_hints(t.hints).to_string();
    // A `+`-alternative constraint by its global (declaration-order) index,
    // with the declaration's own parameter names.
    let show_constraint = |k: usize| match module.constraints.get(k) {
        Some(c) => format!(
            "{} >= {}",
            TermDisplay::new(&c.lhs, sig).with_hints(&c.hints),
            TermDisplay::new(&c.rhs, sig).with_hints(&c.hints)
        ),
        None => format!("#{k}"),
    };

    let solve = t.explanation.solve.as_ref();
    // The phase-2 conjunction with its origins: goal i was built from the
    // deferred commitment `α ⊒ t` in `origins[i]`.
    let goal_lines: Vec<(String, String)> = solve
        .map(|s| {
            s.goals
                .iter()
                .zip(&s.origins)
                .map(|((sup, sub), (alpha, commit))| {
                    (
                        format!("{} >= {}", disp(sup), disp(sub)),
                        format!(
                            "{} admits {}",
                            disp(&Term::Var(*alpha)),
                            disp_hinted(commit)
                        ),
                    )
                })
                .collect()
        })
        .unwrap_or_default();

    let mut section = format!("-- {} #{} ({file}:{line}): {quoted}\n", t.what, t.index);
    let verdict;
    let mut steps_json: Vec<String> = Vec::new();
    let mut core_json: Vec<String> = Vec::new();
    let mut witness_validated = "null".to_string();
    let mut diag_json = "null".to_string();

    match (&t.explanation.result, solve.map(|s| &s.verdict)) {
        (Ok(_), Some(Witnessed::Proved(w))) => {
            verdict = "well-typed";
            let mut steps: Vec<StepLine> = Vec::new();
            let replay = witness::replay(sig, constraints, w, |_, step, sup, sub| {
                let (rule, constraint) = match step {
                    Step::Refl => ("refl", None),
                    Step::Decompose => ("decompose", None),
                    Step::Constraint(k) => ("constraint", Some(k)),
                };
                steps.push(StepLine {
                    rule,
                    constraint,
                    goal: format!("{} >= {}", disp(sup), disp(sub)),
                });
            });
            section.push_str(&format!(
                "   well-typed: {} deferred commitment(s) proved\n",
                goal_lines.len()
            ));
            for (i, (goal, commit)) in goal_lines.iter().enumerate() {
                section.push_str(&format!("     goal {}: {goal}   [{commit}]\n", i + 1));
            }
            match &replay {
                Ok(()) => {
                    obs.incr(Counter::WitnessValidated);
                    witness_validated = "true".to_string();
                    section.push_str(&format!(
                        "   derivation (validated, {} step(s)):\n",
                        steps.len()
                    ));
                    for (i, s) in steps.iter().enumerate() {
                        match s.constraint {
                            Some(k) => section.push_str(&format!(
                                "     {}. {} #{k} ({}): {}\n",
                                i + 1,
                                s.rule,
                                show_constraint(k),
                                s.goal
                            )),
                            None => section.push_str(&format!(
                                "     {}. {}: {}\n",
                                i + 1,
                                s.rule,
                                s.goal
                            )),
                        }
                    }
                }
                Err(e) => {
                    obs.incr(Counter::WitnessInvalid);
                    witness_validated = "false".to_string();
                    section.push_str(&format!("   WITNESS INVALID: {e}\n"));
                }
            }
            steps_json = steps
                .iter()
                .map(|s| {
                    let c = s.constraint.map_or("null".to_string(), |k| k.to_string());
                    format!(
                        "{{\"rule\":{},\"constraint\":{c},\"goal\":{}}}",
                        jstr(s.rule),
                        jstr(&s.goal)
                    )
                })
                .collect();
        }
        (Ok(_), _) => {
            verdict = "well-typed";
            witness_validated = "true".to_string();
            section.push_str("   well-typed: no residual subtype obligations\n");
        }
        (Err(e), v) => {
            verdict = if matches!(v, Some(Witnessed::Unknown)) {
                "inconclusive"
            } else {
                "rejected"
            };
            let mut d = if t.what == "clause" {
                clause_check_diagnostic(module, t.index, e)
            } else {
                query_check_diagnostic(module, t.index, e)
            };
            if let Some(Witnessed::Refuted { core }) = v {
                for (m, &j) in core.iter().enumerate() {
                    let (goal, commit) = &goal_lines[j];
                    d = d.note(format!(
                        "refutation core {}/{}: {goal} is underivable (required because \
                         {commit})",
                        m + 1,
                        core.len()
                    ));
                    core_json.push(format!(
                        "{{\"goal\":{},\"commitment\":{}}}",
                        jstr(goal),
                        jstr(commit)
                    ));
                }
                d = d.note(
                    "the core is 1-minimal: drop any one of these commitments and the \
                     remainder becomes derivable",
                );
            }
            section.push_str(&diag::render_human(&d, src, file));
            diag_json = diag::render_json_one(&d, src, file);
        }
    }

    let item = format!(
        "{{\"kind\":{},\"index\":{},\"line\":{line},\"source\":{},\"verdict\":{},\
         \"goals\":[{}],\"steps\":[{}],\"witness_validated\":{witness_validated},\
         \"core\":[{}],\"diagnostic\":{diag_json}}}",
        jstr(t.what),
        t.index,
        jstr(&quoted),
        jstr(verdict),
        goal_lines
            .iter()
            .map(|(g, c)| format!("{{\"goal\":{},\"commitment\":{}}}", jstr(g), jstr(c)))
            .collect::<Vec<_>>()
            .join(","),
        steps_json.join(","),
        core_json.join(",")
    );
    (verdict, section, item)
}

/// Minimal JSON string quoting (matches `diag`'s encoding).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn info(program: &TypedProgram) -> Result<(), String> {
    let m = program.module();
    let sig = &m.sig;
    use subtype_lp::term::SymKind;
    let names = |kind: SymKind| -> Vec<String> {
        sig.symbols_of_kind(kind)
            .map(|s| match sig.arity(s) {
                Some(n) => format!("{}/{n}", sig.name(s)),
                None => sig.name(s).to_string(),
            })
            .collect()
    };
    println!("function symbols: {}", names(SymKind::Func).join(", "));
    println!("type constructors: {}", names(SymKind::TypeCtor).join(", "));
    println!("predicates:        {}", names(SymKind::Pred).join(", "));
    println!("constraints:");
    for c in program.constraints().as_set().constraints() {
        println!(
            "  {} >= {}",
            TermDisplay::new(&c.lhs, sig),
            TermDisplay::new(&c.rhs, sig)
        );
    }
    println!("predicate types:");
    for (_, t) in program.pred_types().iter() {
        println!("  {}", TermDisplay::new(t, sig));
    }
    println!(
        "{} clause(s), {} query(ies)",
        m.clauses.len(),
        m.queries.len()
    );
    Ok(())
}
