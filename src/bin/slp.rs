//! `slp` — the subtype-lp command-line interface.
//!
//! ```text
//! slp check   FILE                 type-check every clause and query
//! slp lint    FILE [--deny warnings] [--format json]
//!                                  run the static analyzer (dead clauses,
//!                                  empty types, head condition, unused
//!                                  symbols, overlapping heads, …)
//! slp run     FILE [-q N] [-n N]   run a query (after checking)
//! slp audit   FILE [-q N] [-n N]   run with Theorem 6 consistency auditing
//! slp subtype FILE SUP SUB         decide SUP >= SUB (deterministic prover)
//! slp match   FILE TYPE TERM       evaluate match(TYPE, TERM)
//! slp filter  FILE FROM TO         generate a filtering predicate (§7)
//! slp export  FILE                 print the module in canonical syntax
//! slp info    FILE                 summarize declarations
//! ```
//!
//! Every rejection — parse error, §3 declaration error, §6 well-typedness
//! failure, lint finding — is rendered through the same span-carrying
//! [`Diagnostic`] machinery. Exit codes: 0 clean, 1 for warnings under
//! `lint --deny warnings`, 2 for errors.

use std::cell::RefCell;
use std::process::ExitCode;

use subtype_lp::core::consistency::AuditConfig;
use subtype_lp::core::diag::{self, Diagnostic};
use subtype_lp::core::lint::{
    clause_check_diagnostic, decl_diagnostic, lint_module, query_check_diagnostic, LintOptions,
};
use subtype_lp::core::{
    match_type, ConstraintSet, MatchOutcome, NaiveProver, ProofTable, Prover, TabledProver,
};
use subtype_lp::parser::{parse_module, Module};
use subtype_lp::term::TermDisplay;
use subtype_lp::TypedProgram;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("slp: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:\n  slp check FILE\n  slp lint FILE [--deny warnings] [--format json|human]\n  slp run FILE [-q QUERY] [-n MAX]\n  slp audit FILE [-q QUERY] [-n MAX]\n  slp subtype FILE SUPERTYPE SUBTYPE [--naive]\n  slp match FILE TYPE TERM\n  slp filter FILE FROM_TYPE TO_TYPE\n  slp export FILE\n  slp info FILE\n\nAll commands accept --no-table to disable subtype-proof tabling.\nExit codes: 0 clean, 1 warnings under --deny warnings, 2 errors."
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    // The FILE operand is the first argument that is neither a flag nor the
    // value of a value-taking flag, so `slp lint --deny warnings f.slp` and
    // `slp lint f.slp --deny warnings` both work.
    let mut rest = args[1..].iter();
    let mut file = None;
    while let Some(a) = rest.next() {
        if a == "--format" || a == "--deny" {
            rest.next();
        } else if !a.starts_with("--") {
            file = Some(a);
            break;
        }
    }
    let file = file.ok_or_else(usage)?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let no_table = args.iter().any(|a| a == "--no-table");

    if command == "lint" {
        return lint_cmd(file, &src, args, no_table);
    }

    let module = match parse_module(&src) {
        Ok(m) => m,
        Err(e) => return Ok(report_errors(&[Diagnostic::from(&e)], &src, file)),
    };
    let program = match TypedProgram::from_module(module.clone()) {
        Ok(p) => p.with_tabling(!no_table),
        Err(e) => return Ok(report_errors(&program_diagnostics(&module, &e), &src, file)),
    };

    match command.as_str() {
        "check" => check(&program, &src, file),
        "run" => execute(&program, &src, file, args, false),
        "audit" => execute(&program, &src, file, args, true),
        "subtype" => subtype(program, args).map(|()| ExitCode::SUCCESS),
        "match" => match_cmd(program, args).map(|()| ExitCode::SUCCESS),
        "filter" => filter_cmd(program, args).map(|()| ExitCode::SUCCESS),
        "export" => {
            print!("{}", subtype_lp::parser::unparse(program.module()));
            Ok(ExitCode::SUCCESS)
        }
        "info" => info(&program).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// Renders error diagnostics to stderr and yields exit code 2.
fn report_errors(diags: &[Diagnostic], src: &str, file: &str) -> ExitCode {
    let mut ds = diags.to_vec();
    diag::sort(&mut ds);
    eprint!("{}", diag::render_human_all(&ds, src, file));
    ExitCode::from(2)
}

/// Maps a program-construction failure onto span-carrying diagnostics.
fn program_diagnostics(module: &Module, e: &subtype_lp::Error) -> Vec<Diagnostic> {
    match e {
        subtype_lp::Error::Parse(p) => vec![Diagnostic::from(p)],
        subtype_lp::Error::Declarations(d) => vec![decl_diagnostic(module, d)],
        // `from_module` only produces `Check` for predicate-type-table
        // errors (duplicate declarations etc.), whose spans the diagnostic
        // constructor resolves itself; the index is not a clause index.
        subtype_lp::Error::Check(errors) => errors
            .iter()
            .map(|(i, e)| clause_check_diagnostic(module, *i, e))
            .collect(),
    }
}

/// Diagnostics for every ill-typed clause and query, or empty when the
/// program is well-typed.
fn check_program_diags(program: &TypedProgram) -> Vec<Diagnostic> {
    let module = program.module();
    let mut diags = Vec::new();
    if let Err(subtype_lp::Error::Check(errs)) = program.check_clauses() {
        diags.extend(
            errs.iter()
                .map(|(i, e)| clause_check_diagnostic(module, *i, e)),
        );
    }
    if let Err(subtype_lp::Error::Check(errs)) = program.check_queries() {
        diags.extend(
            errs.iter()
                .map(|(i, e)| query_check_diagnostic(module, *i, e)),
        );
    }
    diags
}

fn lint_cmd(file: &str, src: &str, args: &[String], no_table: bool) -> Result<ExitCode, String> {
    let json = match args
        .iter()
        .position(|a| a == "--format")
        .map(|i| args.get(i + 1).map(String::as_str))
    {
        Some(Some("json")) => true,
        Some(Some("human")) | None => false,
        Some(other) => {
            return Err(format!(
                "--format expects `json` or `human`, got {}\n{}",
                other.unwrap_or("nothing"),
                usage()
            ))
        }
    };
    let deny_warnings = match args
        .iter()
        .position(|a| a == "--deny")
        .map(|i| args.get(i + 1).map(String::as_str))
    {
        Some(Some("warnings")) => true,
        None => false,
        Some(other) => {
            return Err(format!(
                "--deny expects `warnings`, got {}\n{}",
                other.unwrap_or("nothing"),
                usage()
            ))
        }
    };
    let diags = match parse_module(src) {
        Err(e) => vec![Diagnostic::from(&e)],
        Ok(m) => lint_module(&m, &LintOptions { tabling: !no_table }),
    };
    if json {
        print!("{}", diag::render_json_all(&diags, src, file));
    } else {
        print!("{}", diag::render_human_all(&diags, src, file));
    }
    let (errors, warnings) = diag::counts(&diags);
    Ok(if errors > 0 {
        ExitCode::from(2)
    } else if warnings > 0 && deny_warnings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn check(program: &TypedProgram, src: &str, file: &str) -> Result<ExitCode, String> {
    let diags = check_program_diags(program);
    if !diags.is_empty() {
        return Ok(report_errors(&diags, src, file));
    }
    println!(
        "well-typed: {} clause(s), {} query(ies)",
        program.module().clauses.len(),
        program.module().queries.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn execute(
    program: &TypedProgram,
    src: &str,
    file: &str,
    args: &[String],
    auditing: bool,
) -> Result<ExitCode, String> {
    let diags = check_program_diags(program);
    if !diags.is_empty() {
        return Ok(report_errors(&diags, src, file));
    }
    let query = flag_value(args, "-q").unwrap_or(0);
    let max = flag_value(args, "-n").unwrap_or(10);
    let queries = &program.module().queries;
    if queries.is_empty() {
        return Err("the program contains no queries".into());
    }
    if query >= queries.len() {
        return Err(format!(
            "query index {query} out of range (program has {})",
            queries.len()
        ));
    }
    if auditing {
        let report = program.audit_query(
            query,
            AuditConfig {
                max_solutions: max,
                ..AuditConfig::default()
            },
        );
        for sol in &report.solutions {
            print_solution(program, query, sol);
        }
        println!(
            "audited {} resolvent(s): {} violation(s), answers {}",
            report.resolvents_checked,
            report.violations.len(),
            if report.answers_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            }
        );
        if !report.is_clean() {
            return Err("consistency violations detected".into());
        }
    } else {
        let solutions = program.run_query(query, max);
        if solutions.is_empty() {
            println!("no.");
        }
        for sol in &solutions {
            print_solution(program, query, sol);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn print_solution(program: &TypedProgram, query: usize, sol: &subtype_lp::engine::Solution) {
    let q = &program.module().queries[query];
    let mut parts = Vec::new();
    for (v, name) in q.hints.iter() {
        let value = sol.answer.resolve(&subtype_lp::term::Term::Var(v));
        let shown = program.display_with(&value, &q.hints).to_string();
        if shown != name {
            parts.push(format!("{name} = {shown}"));
        }
    }
    parts.sort();
    if parts.is_empty() {
        println!("yes.");
    } else {
        println!("{}.", parts.join(", "));
    }
}

fn subtype(program: TypedProgram, args: &[String]) -> Result<(), String> {
    let sup_src = args.get(2).ok_or_else(usage)?;
    let sub_src = args.get(3).ok_or_else(usage)?;
    let naive = args.iter().any(|a| a == "--naive");
    let tabled = args.iter().all(|a| a != "--no-table");
    let mut loader = program.into_loader();
    let (sup, _) = loader
        .parse_type(sup_src)
        .map_err(|e| format!("supertype: {e}"))?;
    let (sub, _) = loader
        .parse_type(sub_src)
        .map_err(|e| format!("subtype: {e}"))?;
    let module = loader.finish();
    let cs = ConstraintSet::from_module(&module).map_err(|e| e.to_string())?;
    if naive {
        let prover = NaiveProver::new(&module.sig, &cs);
        let outcome = prover.prove(&sup, &sub);
        println!("naive SLD over H_C: {outcome:?}");
        return Ok(());
    }
    let checked = cs.checked(&module.sig).map_err(|e| e.to_string())?;
    let table = RefCell::new(ProofTable::new());
    let proof = if tabled {
        TabledProver::new(&module.sig, &checked, &table).subtype(&sup, &sub)
    } else {
        Prover::new(&module.sig, &checked).subtype(&sup, &sub)
    };
    let verdict = match &proof {
        subtype_lp::core::Proof::Proved(answer) => {
            let witness: Vec<String> = answer
                .iter()
                .map(|(v, t)| format!("_G{} = {}", v.0, TermDisplay::new(t, &module.sig)))
                .collect();
            if witness.is_empty() {
                "derivable".to_string()
            } else {
                format!("derivable with {}", witness.join(", "))
            }
        }
        subtype_lp::core::Proof::Refuted => "not derivable (exhaustive search)".to_string(),
        subtype_lp::core::Proof::Unknown => "inconclusive (search budget)".to_string(),
    };
    println!(
        "{} >= {}: {verdict}",
        TermDisplay::new(&sup, &module.sig),
        TermDisplay::new(&sub, &module.sig)
    );
    Ok(())
}

fn match_cmd(program: TypedProgram, args: &[String]) -> Result<(), String> {
    let ty_src = args.get(2).ok_or_else(usage)?;
    let term_src = args.get(3).ok_or_else(usage)?;
    let mut loader = program.into_loader();
    let (ty, ty_hints) = loader
        .parse_type(ty_src)
        .map_err(|e| format!("type: {e}"))?;
    let (term, mut hints) = loader
        .parse_program_term(term_src)
        .map_err(|e| format!("term: {e}"))?;
    // Type and term were parsed in separate scopes, so their variables are
    // distinct; merge the hint tables for display.
    for (v, name) in ty_hints.iter() {
        hints.insert(v, name);
    }
    let module = loader.finish();
    let cs = ConstraintSet::from_module(&module)
        .map_err(|e| e.to_string())?
        .checked(&module.sig)
        .map_err(|e| e.to_string())?;
    match match_type(&module.sig, &cs, &ty, &term) {
        MatchOutcome::Typing(theta) => {
            if theta.is_empty() {
                println!("match: {{}} (the empty typing)");
            } else {
                let bindings: Vec<String> = theta
                    .iter()
                    .map(|(v, t)| {
                        let name = hints
                            .get(v)
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("_G{}", v.0));
                        format!(
                            "{name} ↦ {}",
                            TermDisplay::new(t, &module.sig).with_hints(&hints)
                        )
                    })
                    .collect();
                println!("match: {{{}}}", bindings.join(", "));
            }
        }
        MatchOutcome::Fail => println!("match: fail (no typing exists)"),
        MatchOutcome::Bottom => println!("match: ⊥ (no unique most general typing)"),
    }
    Ok(())
}

fn filter_cmd(program: TypedProgram, args: &[String]) -> Result<(), String> {
    let from_src = args.get(2).ok_or_else(usage)?;
    let to_src = args.get(3).ok_or_else(usage)?;
    let mut loader = program.into_loader();
    let (from, _) = loader
        .parse_type(from_src)
        .map_err(|e| format!("from: {e}"))?;
    let (to, _) = loader.parse_type(to_src).map_err(|e| format!("to: {e}"))?;
    let mut module = loader.finish();
    let cs = ConstraintSet::from_module(&module)
        .map_err(|e| e.to_string())?
        .checked(&module.sig)
        .map_err(|e| e.to_string())?;
    let lib = subtype_lp::core::build_filter(&mut module.sig, &cs, &from, &to, &mut module.gen)
        .map_err(|e| e.to_string())?;
    for pt in &lib.pred_types {
        println!("PRED {}.", TermDisplay::new(pt, &module.sig));
    }
    for c in &lib.clauses {
        let head = TermDisplay::new(&c.head, &module.sig);
        if c.body.is_empty() {
            println!("{head}.");
        } else {
            let body: Vec<String> = c
                .body
                .iter()
                .map(|b| TermDisplay::new(b, &module.sig).to_string())
                .collect();
            println!("{head} :- {}.", body.join(", "));
        }
    }
    Ok(())
}

fn info(program: &TypedProgram) -> Result<(), String> {
    let m = program.module();
    let sig = &m.sig;
    use subtype_lp::term::SymKind;
    let names = |kind: SymKind| -> Vec<String> {
        sig.symbols_of_kind(kind)
            .map(|s| match sig.arity(s) {
                Some(n) => format!("{}/{n}", sig.name(s)),
                None => sig.name(s).to_string(),
            })
            .collect()
    };
    println!("function symbols: {}", names(SymKind::Func).join(", "));
    println!("type constructors: {}", names(SymKind::TypeCtor).join(", "));
    println!("predicates:        {}", names(SymKind::Pred).join(", "));
    println!("constraints:");
    for c in program.constraints().as_set().constraints() {
        println!(
            "  {} >= {}",
            TermDisplay::new(&c.lhs, sig),
            TermDisplay::new(&c.rhs, sig)
        );
    }
    println!("predicate types:");
    for (_, t) in program.pred_types().iter() {
        println!("  {}", TermDisplay::new(t, sig));
    }
    println!(
        "{} clause(s), {} query(ies)",
        m.clauses.len(),
        m.queries.len()
    );
    Ok(())
}
