//! Property tests pinning the parallel `slp` batch pipeline to the serial
//! one: over randomly generated programs (clean and error-seeded), running
//! `check`/`lint` with `--jobs 4` must produce byte-identical stdout,
//! byte-identical stderr, and the same exit code as `--jobs 1` — in both
//! the human and JSON formats.
//!
//! The generated corpus comes from `lp_gen::programs`, so every failing
//! case is reproducible from the proptest seed alone.

use std::io::Write;
use std::process::Command;

use lp_gen::programs;
use proptest::prelude::*;

/// Runs `slp` and captures (exit code, stdout, stderr).
fn slp(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_slp"))
        .args(args)
        .output()
        .expect("slp runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Writes each source to a distinct fixture file and returns the paths.
/// The batch index keeps concurrent test binaries from clobbering each
/// other's fixtures.
fn write_batch(tag: &str, sources: &[String]) -> Vec<String> {
    let dir = std::env::temp_dir()
        .join("slp-cli-parallel")
        .join(format!("{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    sources
        .iter()
        .enumerate()
        .map(|(i, src)| {
            let path = dir.join(format!("p{i}.slp"));
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(src.as_bytes()).unwrap();
            path.to_str().unwrap().to_string()
        })
        .collect()
}

/// Asserts `--jobs 1` and `--jobs 4` agree byte-for-byte for `cmd` over
/// `files`, and returns the serial run for further checks.
fn assert_jobs_equivalent(
    cmd: &[&str],
    files: &[String],
) -> Result<(i32, String, String), TestCaseError> {
    let file_refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let mut serial: Vec<&str> = cmd.to_vec();
    serial.extend(&file_refs);
    serial.extend(["--jobs", "1"]);
    let mut parallel: Vec<&str> = cmd.to_vec();
    parallel.extend(&file_refs);
    parallel.extend(["--jobs", "4"]);
    let s = slp(&serial);
    let p = slp(&parallel);
    prop_assert_eq!(&s, &p, "--jobs changed observable output for {:?}", cmd);
    Ok(s)
}

proptest! {
    // Each case spawns a dozen slp processes; a modest case count still
    // sweeps many program shapes.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batches mixing well-typed pipelines, error-seeded pipelines, and a
    /// fact base: parallel output is byte-identical to serial for `check`
    /// and for `lint` in both formats, and the exit code is the worst
    /// per-file code.
    #[test]
    fn jobs_equivalence_over_generated_programs(
        n in 1usize..5,
        k in 1usize..4,
        errors in 0usize..3,
        facts in 1usize..20,
    ) {
        let sources = vec![
            programs::pipeline(n, k),
            programs::pipeline_with_errors(n, k, errors),
            programs::fact_base(facts),
            programs::nrev(n),
        ];
        let tag = format!("{n}-{k}-{errors}-{facts}");
        let files = write_batch(&tag, &sources);

        let (check_code, _, check_err) = assert_jobs_equivalent(&["check"], &files)?;
        let (lint_code, lint_out, _) = assert_jobs_equivalent(&["lint"], &files)?;
        assert_jobs_equivalent(&["lint", "--format", "json"], &files)?;
        assert_jobs_equivalent(&["lint", "--deny", "warnings"], &files)?;

        // The error-seeded file drives the whole batch's exit code.
        if errors > 0 {
            prop_assert_eq!(check_code, 2, "stderr: {}", check_err);
            prop_assert_eq!(lint_code, 2, "stdout: {}", lint_out);
        } else {
            prop_assert_eq!(check_code, 0, "stderr: {}", check_err);
        }

        // Single-file clause-level parallelism agrees too (both a clean
        // and an erroring program).
        for file in [&files[0], &files[1]] {
            assert_jobs_equivalent(&["check"], std::slice::from_ref(file))?;
        }
    }
}
