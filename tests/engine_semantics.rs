//! The SLD engine checked against independent oracles: append answers must
//! equal Rust-side list concatenation; reverse must equal Rust-side reverse;
//! solution counts must match combinatorial expectations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subtype_lp::engine::{Query, SolveConfig};
use subtype_lp::term::{Sym, Term, Var};
use subtype_lp::TypedProgram;

const LIB: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
    PRED app(list(A), list(A), list(A)).
    app(nil, L, L).
    app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
    PRED rev(list(A), list(A)).
    rev(nil, nil).
    rev(cons(X, L), R) :- rev(L, T), app(T, cons(X, nil), R).
";

struct Fx {
    program: TypedProgram,
    nil: Sym,
    cons: Sym,
    zero: Sym,
    succ: Sym,
    pred: Sym,
}

fn fx() -> Fx {
    let program = TypedProgram::from_source(LIB).unwrap();
    let sig = &program.module().sig;
    Fx {
        nil: sig.lookup("nil").unwrap(),
        cons: sig.lookup("cons").unwrap(),
        zero: sig.lookup("0").unwrap(),
        succ: sig.lookup("succ").unwrap(),
        pred: sig.lookup("pred").unwrap(),
        program,
    }
}

impl Fx {
    fn num(&self, n: i64) -> Term {
        let mut t = Term::constant(self.zero);
        let w = if n >= 0 { self.succ } else { self.pred };
        for _ in 0..n.abs() {
            t = Term::app(w, vec![t]);
        }
        t
    }

    fn list(&self, items: &[i64]) -> Term {
        items
            .iter()
            .rev()
            .fold(Term::constant(self.nil), |acc, &n| {
                Term::app(self.cons, vec![self.num(n), acc])
            })
    }

    fn solve_one(&self, goal: Term, out: Var) -> Option<Term> {
        let db = self.program.database();
        let mut q = Query::new(&db, vec![goal], SolveConfig::default());
        q.next_solution().map(|s| s.answer.resolve(&Term::Var(out)))
    }
}

#[test]
fn append_matches_rust_concatenation() {
    let f = fx();
    let app = f.program.module().sig.lookup("app").unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let a: Vec<i64> = (0..rng.gen_range(0..5))
            .map(|_| rng.gen_range(-2..3))
            .collect();
        let b: Vec<i64> = (0..rng.gen_range(0..5))
            .map(|_| rng.gen_range(-2..3))
            .collect();
        let expected: Vec<i64> = a.iter().chain(&b).copied().collect();
        let out = Var(1_000_000);
        let goal = Term::app(app, vec![f.list(&a), f.list(&b), Term::Var(out)]);
        let got = f.solve_one(goal, out).expect("append succeeds");
        assert_eq!(got, f.list(&expected), "append {a:?} ++ {b:?}");
    }
}

#[test]
fn reverse_matches_rust_reverse() {
    let f = fx();
    let rev = f.program.module().sig.lookup("rev").unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..25 {
        let a: Vec<i64> = (0..rng.gen_range(0..6))
            .map(|_| rng.gen_range(-2..3))
            .collect();
        let mut expected = a.clone();
        expected.reverse();
        let out = Var(1_000_000);
        let goal = Term::app(rev, vec![f.list(&a), Term::Var(out)]);
        let got = f.solve_one(goal, out).expect("reverse succeeds");
        assert_eq!(got, f.list(&expected), "reverse {a:?}");
    }
}

#[test]
fn split_counts_are_n_plus_one() {
    let f = fx();
    let app = f.program.module().sig.lookup("app").unwrap();
    let db = f.program.database();
    for n in 0..6 {
        let items: Vec<i64> = (0..n).collect();
        let goal = Term::app(
            app,
            vec![
                Term::Var(Var(1_000_000)),
                Term::Var(Var(1_000_001)),
                f.list(&items),
            ],
        );
        let mut q = Query::new(&db, vec![goal], SolveConfig::default());
        let mut count = 0;
        while q.next_solution().is_some() {
            count += 1;
        }
        assert_eq!(count, n + 1, "splits of a {n}-element list");
        assert!(q.exhausted_conclusively());
    }
}

#[test]
fn append_is_reversible_mode() {
    // app(X, [1], [0, 1]) determines X = [0].
    let f = fx();
    let app = f.program.module().sig.lookup("app").unwrap();
    let out = Var(1_000_000);
    let goal = Term::app(app, vec![Term::Var(out), f.list(&[1]), f.list(&[0, 1])]);
    assert_eq!(f.solve_one(goal, out), Some(f.list(&[0])));
    // And an impossible suffix fails finitely.
    let goal = Term::app(app, vec![Term::Var(out), f.list(&[2]), f.list(&[0, 1])]);
    assert_eq!(f.solve_one(goal, out), None);
}
