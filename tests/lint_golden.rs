//! Golden tests for `slp lint`: the committed outputs under `tests/golden/`
//! must match the binary byte for byte, in both human and JSON formats,
//! with and without tabling.
//!
//! The binary is invoked from the crate root with a relative path so the
//! file names embedded in the output match a `./ci.sh` invocation.

use std::path::Path;
use std::process::Command;

/// Runs `slp lint` from the crate root; returns (exit code, stdout, stderr).
fn lint(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_slp"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .arg("lint")
        .args(args)
        .output()
        .expect("slp runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Asserts that linting `example` matches the committed goldens in both
/// formats, tabled and untabled, and exits with `expect_code`.
fn check_example(example: &str, stem: &str, expect_code: i32) {
    let file = format!("examples/{example}");
    for extra in [&[][..], &["--no-table"][..]] {
        let mut args = vec![file.as_str()];
        args.extend_from_slice(extra);
        let (code, stdout, stderr) = lint(&args);
        assert_eq!(code, expect_code, "{example} {extra:?}: {stdout}{stderr}");
        assert_eq!(
            stdout,
            golden(&format!("{stem}.txt")),
            "{example} {extra:?}"
        );
        assert_eq!(stderr, "", "{example} {extra:?}");

        let mut jargs = vec![file.as_str(), "--format", "json"];
        jargs.extend_from_slice(extra);
        let (jcode, jstdout, _) = lint(&jargs);
        assert_eq!(jcode, expect_code);
        assert_eq!(jstdout, golden(&format!("{stem}.json")), "{example} json");
    }
}

#[test]
fn lint_demo_matches_golden() {
    check_example("lint_demo.slp", "lint_demo", 2);
}

#[test]
fn app_is_clean_and_matches_golden() {
    check_example("app.slp", "app", 0);
}

#[test]
fn naturals_is_clean_and_matches_golden() {
    check_example("naturals.slp", "naturals", 0);
}

#[test]
fn demo_reports_every_pass() {
    let (_, stdout, _) = lint(&["examples/lint_demo.slp"]);
    for code in [
        "E0201", "E0202", "W0301", "W0302", "W0401", "W0402", "W0403", "W0404", "W0405", "W0501",
        "W0502",
    ] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
}

#[test]
fn deny_warnings_flips_exit_code() {
    // lint_demo has errors: always 2, --deny changes nothing.
    let (code, _, _) = lint(&["examples/lint_demo.slp", "--deny", "warnings"]);
    assert_eq!(code, 2);
    // A warnings-only file: 0 normally, 1 under --deny warnings.
    let dir = std::env::temp_dir().join("slp-lint-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let warny = dir.join("warny.slp");
    std::fs::write(
        &warny,
        "FUNC 0, orphan. TYPE nat. nat >= 0. PRED p(nat). p(0). :- p(0).\n",
    )
    .unwrap();
    let (code, stdout, _) = lint(&[warny.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("W0402"), "{stdout}");
    let (code, _, _) = lint(&[warny.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn json_mode_round_trips_spans() {
    let (_, stdout, _) = lint(&["examples/lint_demo.slp", "--format", "json"]);
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/lint_demo.slp"),
    )
    .unwrap();
    // Hand-rolled spot check (no JSON dependency): every reported span's
    // start/end offsets slice the source at char boundaries and are
    // non-empty and in range.
    let mut checked = 0;
    for piece in stdout.split("\"span\":{").skip(1) {
        let obj = &piece[..piece.find('}').unwrap()];
        let field = |name: &str| -> usize {
            let at = obj.find(name).unwrap() + name.len();
            obj[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let (start, end) = (field("\"start\":"), field("\"end\":"));
        assert!(start < end && end <= src.len(), "span {start}..{end}");
        assert!(src.is_char_boundary(start) && src.is_char_boundary(end));
        checked += 1;
    }
    assert!(checked >= 10, "expected many spans, saw {checked}");
}

#[test]
fn section3_rejections_render_with_caret() {
    let dir = std::env::temp_dir().join("slp-lint-golden");
    std::fs::create_dir_all(&dir).unwrap();
    // Non-uniform: repeated parameter on the left-hand side.
    let nonuniform = dir.join("nonuniform.slp");
    std::fs::write(&nonuniform, "FUNC a. TYPE t.\nt(A, A) >= a.\n").unwrap();
    let (code, stdout, _) = lint(&[nonuniform.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stdout.contains("E0102"), "{stdout}");
    assert!(stdout.contains("t(A, A) >= a."), "{stdout}");
    assert!(stdout.contains('^'), "{stdout}");
    // Unguarded: t and u depend directly on each other.
    let unguarded = dir.join("unguarded.slp");
    std::fs::write(&unguarded, "TYPE t, u.\nt >= u.\nu >= t.\n").unwrap();
    let (code, stdout, _) = lint(&[unguarded.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stdout.contains("E0103"), "{stdout}");
    assert!(stdout.contains('^'), "{stdout}");
    // `slp check` renders the same §3 rejection to stderr.
    let (code2, _, stderr) = {
        let out = Command::new(env!("CARGO_BIN_EXE_slp"))
            .args(["check", unguarded.to_str().unwrap()])
            .output()
            .unwrap();
        (
            out.status.code().unwrap(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    assert_eq!(code2, 2);
    assert!(stderr.contains("E0103"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
}

#[test]
fn parse_errors_are_e0001_with_span() {
    let dir = std::env::temp_dir().join("slp-lint-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("syntax.slp");
    std::fs::write(&bad, "FUNC a b.\n").unwrap();
    let (code, stdout, _) = lint(&[bad.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stdout.contains("E0001"), "{stdout}");
    assert!(stdout.contains(":1:"), "{stdout}");
}
