//! Experiment E2: the deterministic strategy (§3, Theorems 1–2) agrees with
//! the raw SLD proof system over `H_C` (§2, Definition 3).
//!
//! Cross-validation protocol (the naive side is budget-capped because the
//! SLD tree of `H_C` is infinite):
//!
//! * naive `Proved`     ⇒ deterministic must prove;
//! * naive `Exhausted`  ⇒ deterministic must refute;
//! * deterministic `Refuted` ⇒ naive must not prove (at any budget);
//! * naive `DepthLimit` ⇒ no claim (that asymmetry is the paper's point).

use rand::rngs::StdRng;
use rand::SeedableRng;

use subtype_lp::core::{NaiveOutcome, NaiveProver, Prover};
use subtype_lp::gen::{terms, worlds};
use subtype_lp::term::Term;

fn cross_validate(world: &worlds::BuiltWorld, pairs: &[(Term, Term)], naive: &NaiveProver) {
    let det = Prover::new(&world.sig, &world.checked);
    for (sup, sub) in pairs {
        let fast = det.subtype(sup, sub);
        let slow = naive.prove(sup, sub);
        match slow {
            NaiveOutcome::Proved { .. } => {
                assert!(
                    fast.is_proved(),
                    "naive proved but deterministic did not: {sup:?} >= {sub:?} -> {fast:?}"
                );
            }
            NaiveOutcome::Exhausted => {
                assert!(
                    fast.is_refuted(),
                    "naive exhausted but deterministic says {fast:?}: {sup:?} >= {sub:?}"
                );
            }
            NaiveOutcome::DepthLimit => {}
        }
        if fast.is_refuted() {
            assert!(
                !slow.is_proved(),
                "deterministic refuted but naive proved: {sup:?} >= {sub:?}"
            );
        }
    }
}

#[test]
fn paper_world_ground_pairs_agree() {
    let world = worlds::paper_world();
    let naive = NaiveProver::new(&world.sig, &world.cs)
        .with_max_depth(7)
        .with_step_budget(150_000);
    let mut rng = StdRng::seed_from_u64(11);
    let mut pairs = Vec::new();
    // Ground type pairs (types without variables): both constructors and
    // raw terms can appear on either side.
    for _ in 0..60 {
        let sup = terms::random_type(&mut rng, &world, 2, &[]);
        let sub = terms::random_type(&mut rng, &world, 2, &[]);
        pairs.push((sup, sub));
    }
    cross_validate(&world, &pairs, &naive);
}

#[test]
fn paper_world_membership_pairs_agree() {
    let world = worlds::paper_world();
    let naive = NaiveProver::new(&world.sig, &world.cs)
        .with_max_depth(7)
        .with_step_budget(150_000);
    let mut rng = StdRng::seed_from_u64(12);
    let mut pairs = Vec::new();
    for _ in 0..40 {
        let ty = terms::random_type(&mut rng, &world, 2, &[]);
        let t = terms::random_ground_term(&mut rng, &world.sig, &world.funcs, 2);
        pairs.push((ty, t));
    }
    cross_validate(&world, &pairs, &naive);
}

#[test]
fn random_worlds_agree_across_seeds() {
    for seed in 0..8 {
        let world = worlds::random(seed, worlds::RandomWorldConfig::default());
        let naive = NaiveProver::new(&world.sig, &world.cs)
            .with_max_depth(6)
            .with_step_budget(80_000);
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut pairs = Vec::new();
        for _ in 0..25 {
            let sup = terms::random_type(&mut rng, &world, 2, &[]);
            let sub = terms::random_type(&mut rng, &world, 2, &[]);
            pairs.push((sup, sub));
        }
        cross_validate(&world, &pairs, &naive);
    }
}

#[test]
fn chain_world_agreement_and_speed_gap() {
    // The F1 shape in miniature: on a depth-6 chain the deterministic
    // prover answers instantly; the naive prover needs increasing depth.
    let world = worlds::chain(6);
    let det = Prover::new(&world.sig, &world.checked);
    let naive = NaiveProver::new(&world.sig, &world.cs)
        .with_max_depth(8)
        .with_step_budget(500_000);
    let t0 = Term::constant(world.sig.lookup("t0").unwrap());
    let z = Term::constant(world.sig.lookup("z").unwrap());
    assert!(det.subtype(&t0, &z).is_proved());
    let slow = naive.prove(&t0, &z);
    // The chain needs ~2 steps per link; depth 8 may or may not reach it,
    // but whatever the naive prover concludes must not contradict.
    assert!(!matches!(slow, NaiveOutcome::Exhausted));
}

#[test]
fn sampled_inhabitants_are_derivable_both_ways() {
    let world = worlds::paper_world();
    let det = Prover::new(&world.sig, &world.checked);
    let naive = NaiveProver::new(&world.sig, &world.cs)
        .with_max_depth(7)
        .with_step_budget(150_000);
    let mut rng = StdRng::seed_from_u64(13);
    let nat = Term::constant(world.sig.lookup("nat").unwrap());
    let elist = Term::constant(world.sig.lookup("elist").unwrap());
    for ty in [nat, elist] {
        for _ in 0..10 {
            if let Some(t) = terms::sample_inhabitant(&mut rng, &world.sig, &world.checked, &ty, 6)
            {
                assert!(det.member(&ty, &t).is_proved());
                // The naive prover may time out on deep witnesses, but must
                // never conclusively deny a true membership.
                assert!(!matches!(naive.prove(&ty, &t), NaiveOutcome::Exhausted));
            }
        }
    }
}
