//! Experiment E3: Theorem 3 — guardedness makes the deterministic strategy
//! terminate; unguarded and non-uniform declarations are rejected up front.

use subtype_lp::core::{ConstraintSet, Prover, TypeDeclError};
use subtype_lp::gen::{terms, worlds};
use subtype_lp::TypedProgram;

#[test]
fn paper_rejection_examples() {
    // Every unacceptable declaration set from §3, in the concrete syntax.
    let cases = [
        ("immediate", "TYPE c. c >= c."),
        ("through ctor argument", "FUNC f. TYPE c. c(A) >= c(f(A))."),
        (
            "mutual",
            "FUNC f. TYPE c, b. c(A) >= b(f(A)). b(B) >= c(f(B)).",
        ),
        ("through polymorphism", "TYPE b, c. b(A) >= A. c >= b(c)."),
    ];
    for (name, src) in cases {
        let err = TypedProgram::from_source(src).unwrap_err();
        let subtype_lp::Error::Declarations(TypeDeclError::Unguarded { cycle }) = err else {
            panic!("{name}: expected Unguarded, got {err:?}");
        };
        assert!(!cycle.is_empty(), "{name}: cycle must be reported");
    }
}

#[test]
fn paper_acceptable_example() {
    // "the constraint c >= f(c). is acceptable" (§3).
    TypedProgram::from_source("FUNC f. TYPE c. c >= f(c).").unwrap();
}

#[test]
fn non_uniform_rejected_with_index() {
    let err =
        TypedProgram::from_source("FUNC m. TYPE id, males. id(males) >= m(males).").unwrap_err();
    let subtype_lp::Error::Declarations(TypeDeclError::NonUniform { ctor, .. }) = err else {
        panic!("expected NonUniform, got {err:?}");
    };
    assert_eq!(ctor, "id");
}

#[test]
fn repeated_parameter_rejected() {
    let err = TypedProgram::from_source("FUNC f. TYPE c. c(A, A) >= f(A).").unwrap_err();
    assert!(matches!(
        err,
        subtype_lp::Error::Declarations(TypeDeclError::NonUniform { .. })
    ));
}

#[test]
fn deterministic_prover_terminates_on_many_random_guarded_worlds() {
    // Theorem 3 exercised in bulk: the prover must return (not hang) on
    // every query over every generated guarded world. A diverging strategy
    // would time the suite out.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    for seed in 0..20 {
        let world = worlds::random(seed, worlds::RandomWorldConfig::default());
        let prover = Prover::new(&world.sig, &world.checked);
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        for _ in 0..40 {
            let sup = terms::random_type(&mut rng, &world, 3, &[]);
            let sub = terms::random_type(&mut rng, &world, 3, &[]);
            let _ = prover.subtype(&sup, &sub);
        }
    }
}

#[test]
fn deep_guarded_recursion_is_fine() {
    // Guarded self-recursion through a function symbol nests arbitrarily:
    // stream-of-streams style declarations stay terminating.
    let src = "
        FUNC mk, stop.
        TYPE s.
        s >= stop + mk(s).
    ";
    let p = TypedProgram::from_source(src).unwrap();
    let module = p.module();
    let cs = ConstraintSet::from_module(module)
        .unwrap()
        .checked(&module.sig)
        .unwrap();
    let prover = Prover::new(&module.sig, &cs);
    let s = module.sig.lookup("s").unwrap();
    let mk = module.sig.lookup("mk").unwrap();
    let stop = module.sig.lookup("stop").unwrap();
    use subtype_lp::term::Term;
    // mk(mk(mk(stop))) ∈ M⟦s⟧.
    let mut t = Term::constant(stop);
    for _ in 0..3 {
        t = Term::app(mk, vec![t]);
    }
    assert!(prover.member(&Term::constant(s), &t).is_proved());
}

#[test]
fn dependence_graph_chain_is_acyclic_but_connected() {
    let world = worlds::chain(5);
    let g = subtype_lp::core::DependenceGraph::build(&world.sig, &world.cs);
    let t0 = world.sig.lookup("t0").unwrap();
    let t5 = world.sig.lookup("t5").unwrap();
    assert!(g.depends_on(t0, t5));
    assert!(!g.depends_on(t5, t0));
    assert!(!g.depends_on(t0, t0));
    g.check_guarded(&world.sig).unwrap();
}
