//! Integration tests for generated filtering predicates (§7 future work):
//! generated filters must be well-typed, semantically exact (pass exactly
//! the intersection of the two denotations), and consistent under auditing.

use subtype_lp::core::consistency::{AuditConfig, Auditor};
use subtype_lp::core::filter::{build_filter, shapes};
use subtype_lp::core::{semantics, Checker, ConstraintSet, PredTypeTable, Prover};
use subtype_lp::engine::{Database, Query, SolveConfig};
use subtype_lp::term::Term;

const DECLS: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
";

struct World {
    module: subtype_lp::parser::Module,
    cs: subtype_lp::core::CheckedConstraints,
}

fn world() -> World {
    let module = subtype_lp::parser::parse_module(DECLS).unwrap();
    let cs = ConstraintSet::from_module(&module)
        .unwrap()
        .checked(&module.sig)
        .unwrap();
    World { module, cs }
}

fn ty(w: &World, name: &str) -> Term {
    Term::constant(w.module.sig.lookup(name).unwrap())
}

/// Runs the filter on `input`, returning the output term if it passes.
fn run_filter(
    db: &Database,
    entry: subtype_lp::term::Sym,
    input: &Term,
    out_var: subtype_lp::term::Var,
) -> Option<Term> {
    let out = Term::Var(out_var);
    let goal = Term::app(entry, vec![input.clone(), out.clone()]);
    let mut q = Query::new(db, vec![goal], SolveConfig::default());
    q.next_solution().map(|s| s.answer.resolve(&out))
}

#[test]
fn filters_compute_exact_denotation_intersections() {
    // For several (from, to) pairs: a ground input passes the generated
    // filter iff it inhabits BOTH types (checked against enumeration).
    let mut w = world();
    let pairs = [
        ("int", "nat"),
        ("int", "unnat"),
        ("nat", "int"), // widening: everything passes
    ];
    for (from_name, to_name) in pairs {
        let from = ty(&w, from_name);
        let to = ty(&w, to_name);
        let cs = w.cs.clone();
        let lib = build_filter(&mut w.module.sig, &cs, &from, &to, &mut w.module.gen).unwrap();
        let db: Database = lib.clauses.iter().cloned().collect();
        let out_var = w.module.gen.fresh();
        let from_inh = semantics::inhabitants(&w.module.sig, &w.cs, &from, 4);
        let to_inh = semantics::inhabitants(&w.module.sig, &w.cs, &to, 4);
        for t in &from_inh {
            let expected = to_inh.contains(t);
            let got = run_filter(&db, lib.entry, t, out_var);
            assert_eq!(got.is_some(), expected, "{from_name}->{to_name} on {t:?}");
            if let Some(result) = got {
                assert_eq!(&result, t, "filters must copy values through");
            }
        }
    }
}

#[test]
fn generated_filters_type_check_and_audit_clean() {
    let mut w = world();
    let from = {
        let list = w.module.sig.lookup("list").unwrap();
        Term::app(list, vec![ty(&w, "int")])
    };
    let to = {
        let list = w.module.sig.lookup("list").unwrap();
        Term::app(list, vec![ty(&w, "nat")])
    };
    let cs = w.cs.clone();
    let lib = build_filter(&mut w.module.sig, &cs, &from, &to, &mut w.module.gen).unwrap();
    let mut preds = PredTypeTable::new();
    for pt in &lib.pred_types {
        preds.insert(&w.module.sig, pt.clone()).unwrap();
    }
    let checker = Checker::new(&w.module.sig, &w.cs, &preds);
    checker.check_program(lib.clauses.iter()).unwrap();

    // Audit a run through the filter.
    let db: Database = lib.clauses.iter().cloned().collect();
    let cons = w.module.sig.lookup("cons").unwrap();
    let nil = w.module.sig.lookup("nil").unwrap();
    let zero = w.module.sig.lookup("0").unwrap();
    let input = Term::app(cons, vec![Term::constant(zero), Term::constant(nil)]);
    let out = Term::Var(w.module.gen.fresh());
    let goals = vec![Term::app(lib.entry, vec![input, out])];
    let report = Auditor::new(checker).run(&db, &goals, AuditConfig::default());
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.solutions.len(), 1);
}

#[test]
fn shapes_enumeration_matches_declarations() {
    let w = world();
    let int_shapes = shapes(&w.module.sig, &w.cs, &ty(&w, "int"));
    assert_eq!(int_shapes.len(), 3); // 0, succ(nat), pred(unnat)
    let list = w.module.sig.lookup("list").unwrap();
    let list_shapes = shapes(&w.module.sig, &w.cs, &Term::app(list, vec![ty(&w, "nat")]));
    assert_eq!(list_shapes.len(), 2); // nil, cons(nat, list(nat))
}

#[test]
fn widening_filter_is_total_on_source() {
    // nat -> int never rejects: nat ⊆ int.
    let mut w = world();
    let cs = w.cs.clone();
    let from = ty(&w, "nat");
    let to = ty(&w, "int");
    let lib = build_filter(&mut w.module.sig, &cs, &from, &to, &mut w.module.gen).unwrap();
    let db: Database = lib.clauses.iter().cloned().collect();
    let out_var = w.module.gen.fresh();
    for t in semantics::inhabitants(&w.module.sig, &w.cs, &ty(&w, "nat"), 5) {
        assert!(run_filter(&db, lib.entry, &t, out_var).is_some());
    }
}

#[test]
fn nested_list_filter_depth_two() {
    // list(list(int)) -> list(list(nat)).
    let mut w = world();
    let list = w.module.sig.lookup("list").unwrap();
    let from = Term::app(list, vec![Term::app(list, vec![ty(&w, "int")])]);
    let to = Term::app(list, vec![Term::app(list, vec![ty(&w, "nat")])]);
    let cs = w.cs.clone();
    let lib = build_filter(&mut w.module.sig, &cs, &from, &to, &mut w.module.gen).unwrap();
    let db: Database = lib.clauses.iter().cloned().collect();
    let prover = Prover::new(&w.module.sig, &w.cs);
    let out_var = w.module.gen.fresh();
    for t in semantics::inhabitants(&w.module.sig, &w.cs, &from, 5) {
        let expected = prover.member(&to, &t).is_proved();
        let got = run_filter(&db, lib.entry, &t, out_var).is_some();
        assert_eq!(got, expected, "nested filter on {t:?}");
    }
}
