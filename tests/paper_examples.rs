//! Experiments E1, E5, E6, E8: every worked example in the paper, end to
//! end through the public API.

use subtype_lp::core::{match_type, ConstraintSet, NaiveProver, PredTypeTable};
use subtype_lp::term::Term;
use subtype_lp::TypedProgram;

/// The paper's §1 declarations.
const DECLS: &str = "
    FUNC 0, succ, pred, nil, cons, foo.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
";

fn program(extra: &str) -> TypedProgram {
    TypedProgram::from_source(&format!("{DECLS}\n{extra}")).expect("fixture loads")
}

// ---------------------------------------------------------------- E1 (§2)

#[test]
fn e1_section2_derivation_exists_and_replays() {
    // cons(foo, nil) ∈ M_C⟦list(A)⟧ — first via the deterministic §3
    // strategy, then by replaying the §2 SLD derivation over H_C itself.
    let p = program("");
    let sig = &p.module().sig;
    let list = sig.lookup("list").unwrap();
    let cons = sig.lookup("cons").unwrap();
    let foo = sig.lookup("foo").unwrap();
    let nil = sig.lookup("nil").unwrap();
    let t = Term::app(cons, vec![Term::constant(foo), Term::constant(nil)]);
    let ty = Term::app(list, vec![Term::Var(lp_term::Var(90_000))]);
    assert!(p.prover().member(&ty, &t).is_proved());

    // Replay over H_C. Facts: 0/1 union, 2 nat, 3 unnat, 4 int, 5 elist,
    // 6 nelist, 7 list; substitution axioms next; transitivity last.
    let module = p.module();
    let cs = ConstraintSet::from_module(module).unwrap();
    let naive = NaiveProver::new(sig, &cs);
    let theory = naive.theory();
    let trans = theory.database().len() - 1;
    let axiom_for = |s: lp_term::Sym| {
        (0..theory.database().len())
            .find(|&i| {
                let c = theory.database().clause(i);
                c.head.args().len() == 2
                    && c.head.args()[0].functor() == Some(s)
                    && c.head.args()[1].functor() == Some(s)
                    && c.head.args()[0].args().iter().all(Term::is_var)
                    && c.body.len() == sig.arity(s).unwrap_or(0)
            })
            .unwrap()
    };
    let goal = theory.goal(&ty, &t);
    let seq = [
        trans,
        7,
        trans,
        1,
        trans,
        6,
        axiom_for(cons),
        axiom_for(foo),
        trans,
        7,
        trans,
        0,
        5,
    ];
    let resolvent = theory.replay(vec![goal], &seq).expect("derivation applies");
    assert!(resolvent.is_empty(), "§2 derivation must be a refutation");
}

#[test]
fn e1_more_general_examples_from_section2() {
    // "list(A) is more general than nelist(int) but list(int) is not more
    // general than nelist(A)."
    let p = program("");
    let mut module = p.module().clone();
    let cs = ConstraintSet::from_module(&module)
        .unwrap()
        .checked(&module.sig)
        .unwrap();
    let list = module.sig.lookup("list").unwrap();
    let nelist = module.sig.lookup("nelist").unwrap();
    let int = module.sig.lookup("int").unwrap();
    let a = module.gen.fresh();
    let list_a = Term::app(list, vec![Term::Var(a)]);
    let nelist_int = Term::app(nelist, vec![Term::constant(int)]);
    assert!(
        subtype_lp::core::typing::is_more_general(&mut module.sig, &cs, &list_a, &nelist_int)
            .is_proved()
    );
    let list_int = Term::app(list, vec![Term::constant(int)]);
    let b = module.gen.fresh();
    let nelist_b = Term::app(nelist, vec![Term::Var(b)]);
    assert!(
        !subtype_lp::core::typing::is_more_general(&mut module.sig, &cs, &list_int, &nelist_b)
            .is_proved()
    );
}

// ---------------------------------------------------------------- E5 (§4)

#[test]
fn e5_match_examples_from_section4() {
    let p = program("");
    let mut module = p.module().clone();
    let cs = ConstraintSet::from_module(&module)
        .unwrap()
        .checked(&module.sig)
        .unwrap();
    let sig = module.sig.clone();
    let list = sig.lookup("list").unwrap();
    let int = sig.lookup("int").unwrap();
    let nat = sig.lookup("nat").unwrap();
    let cons = sig.lookup("cons").unwrap();
    let succ = sig.lookup("succ").unwrap();
    let plus = sig.lookup("+").unwrap();
    let a = module.gen.fresh();
    let x = module.gen.fresh();
    let y = module.gen.fresh();

    // match(list(A), X) = {X ↦ list(A)}.
    let list_a = Term::app(list, vec![Term::Var(a)]);
    let out = match_type(&sig, &cs, &list_a, &Term::Var(x));
    assert_eq!(out.typing().and_then(|t| t.get(x)), Some(&list_a));

    // match(int, cons(X, Y)) = fail.
    let consxy = Term::app(cons, vec![Term::Var(x), Term::Var(y)]);
    assert!(match_type(&sig, &cs, &Term::constant(int), &consxy).is_fail());

    // match(f(int) + f(list(A)), f(X)) = ⊥ (both respectful, neither most
    // general).
    let fx = Term::app(succ, vec![Term::Var(x)]);
    let u1 = Term::app(
        plus,
        vec![
            Term::app(succ, vec![Term::constant(int)]),
            Term::app(succ, vec![list_a.clone()]),
        ],
    );
    assert!(match_type(&sig, &cs, &u1, &fx).is_bottom());

    // match(A, f(X)) = ⊥ (most general but not respectful).
    assert!(match_type(&sig, &cs, &Term::Var(a), &fx).is_bottom());

    // match(f(int) + f(nat), f(X)) = ⊥ — match loses track although
    // {X ↦ int} is respectful and most general.
    let u2 = Term::app(
        plus,
        vec![
            Term::app(succ, vec![Term::constant(int)]),
            Term::app(succ, vec![Term::constant(nat)]),
        ],
    );
    assert!(match_type(&sig, &cs, &u2, &fx).is_bottom());

    // match(f(int, nat), f(X, X)) = ⊥.
    let f_int_nat = Term::app(cons, vec![Term::constant(int), Term::constant(nat)]);
    let fxx = Term::app(cons, vec![Term::Var(x), Term::Var(x)]);
    assert!(match_type(&sig, &cs, &f_int_nat, &fxx).is_bottom());

    // match(f(int, list(A)), f(X, X)) = ⊥ — no typing possible but match
    // cannot tell.
    let f_int_lista = Term::app(cons, vec![Term::constant(int), list_a]);
    assert!(match_type(&sig, &cs, &f_int_lista, &fxx).is_bottom());
}

// ------------------------------------------------------------- E6 (§5–§6)

#[test]
fn e6_app_program_well_typed_and_bad_query_rejected() {
    let p = program(
        "PRED app(list(A), list(A), list(A)).
         app(nil, L, L).
         app(cons(X, L), M, cons(X, N)) :- app(L, M, N).",
    );
    p.check_all().unwrap();

    let bad = program(
        "PRED app(list(A), list(A), list(A)).
         app(nil, L, L).
         app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
         :- app(nil, 0, 0).",
    );
    bad.check_clauses().unwrap();
    assert!(bad.check_queries().is_err());
}

#[test]
fn e6_rejection_gallery() {
    // Each §5 rejection example, through the facade.
    let rejected = [
        // Aliased query across int / list(A).
        "PRED p(int). PRED q(list(A)). p(0). q(nil). :- p(X), q(X).",
        // Clause crossing type contexts.
        "PRED p(int). PRED r(list(A)). p(0). r(X) :- p(X).",
        // Repeated head variable at two types.
        "PRED s(int, list(A)). s(X, X).",
        // Head commits the predicate's type variable.
        "PRED p(list(A)). p(cons(nil, nil)).",
    ];
    for src in rejected {
        let p = program(src);
        assert!(p.check_all().is_err(), "must reject: {src}");
    }

    // The §5 positive example: a query may commit type variables.
    let p = program("PRED p(list(A)). PRED q(list(int)). p(nil). q(nil). :- p(X), q(X).");
    p.check_all().unwrap();
}

#[test]
fn e6_accepted_programs_execute_consistently() {
    let p = program(
        "PRED app(list(A), list(A), list(A)).
         app(nil, L, L).
         app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
         :- app(X, Y, cons(0, cons(pred(0), nil))).",
    );
    p.check_all().unwrap();
    let report = p.audit_query(0, Default::default());
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.solutions.len(), 3);
}

// ---------------------------------------------------------------- E8 (§7)

#[test]
fn e8_subtype_information_flow() {
    // Rejected as written…
    let p = program("PRED p(nat). PRED q(int). p(0). q(0). :- p(X), q(X).");
    p.check_clauses().unwrap();
    assert!(p.check_queries().is_err());

    // …accepted through the filtering predicate, and the filter works.
    let p = program(
        "PRED p(nat).
         PRED q(int).
         PRED int2nat(int, nat).
         int2nat(0, 0).
         int2nat(succ(X), succ(X)).
         p(0). p(succ(0)).
         q(succ(0)). q(pred(0)).
         :- p(X), int2nat(Y, X), q(Y).",
    );
    p.check_all().unwrap();
    let report = p.audit_query(0, Default::default());
    assert!(report.is_clean());
    // Only succ(0) flows through: 0 is not a q-fact and pred(0) is filtered.
    assert_eq!(report.solutions.len(), 1);
}

#[test]
fn e8_int2nat_filters_unnats() {
    let p = program(
        "PRED int2nat(int, nat).
         int2nat(0, 0).
         int2nat(succ(X), succ(X)).
         :- int2nat(pred(0), X).",
    );
    p.check_all().unwrap();
    assert!(p.run_query(0, 5).is_empty());
}

// -------------------------------------------------- Definition 15 plumbing

#[test]
fn pred_type_table_round_trips_through_module() {
    let p = program("PRED app(list(A), list(A), list(A)). app(nil, L, L).");
    let table = PredTypeTable::from_module(p.module()).unwrap();
    let app = p.module().sig.lookup("app").unwrap();
    assert_eq!(table.get(app).unwrap().args().len(), 3);
}

// Keep lp_term in scope for Var construction above.
use subtype_lp::term as lp_term;
