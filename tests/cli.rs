//! End-to-end tests of the `slp` command-line interface.

use std::io::Write;
use std::process::Command;

const APP: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
    PRED app(list(A), list(A), list(A)).
    app(nil, L, L).
    app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
    :- app(cons(0, nil), cons(succ(0), nil), Z).
";

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("slp-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

fn slp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_slp"))
        .args(args)
        .output()
        .expect("slp runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn check_accepts_well_typed_program() {
    let f = write_fixture("app.slp", APP);
    let (ok, stdout, _) = slp(&["check", f.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("well-typed"));
}

#[test]
fn check_rejects_ill_typed_query() {
    let f = write_fixture("bad.slp", &format!("{APP}\n:- app(nil, 0, 0)."));
    let (ok, _, stderr) = slp(&["check", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("ill-typed"));
}

#[test]
fn run_prints_answer() {
    let f = write_fixture("run.slp", APP);
    let (ok, stdout, _) = slp(&["run", f.to_str().unwrap()]);
    assert!(ok, "stdout: {stdout}");
    assert!(
        stdout.contains("Z = cons(0, cons(succ(0), nil))"),
        "{stdout}"
    );
}

#[test]
fn audit_reports_clean_run() {
    let f = write_fixture("audit.slp", APP);
    let (ok, stdout, _) = slp(&["audit", f.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 violation(s)"));
    assert!(stdout.contains("answers consistent"));
}

#[test]
fn subtype_judgements() {
    let f = write_fixture("sub.slp", APP);
    let (ok, stdout, _) = slp(&["subtype", f.to_str().unwrap(), "int", "nat"]);
    assert!(ok);
    assert!(stdout.contains("derivable"), "{stdout}");
    let (ok, stdout, _) = slp(&["subtype", f.to_str().unwrap(), "nat", "int"]);
    assert!(ok);
    assert!(stdout.contains("not derivable"), "{stdout}");
}

#[test]
fn match_judgements() {
    let f = write_fixture("match.slp", APP);
    let (ok, stdout, _) = slp(&["match", f.to_str().unwrap(), "list(A)", "cons(X, Y)"]);
    assert!(ok);
    assert!(stdout.contains("X ↦ A"), "{stdout}");
    assert!(stdout.contains("Y ↦ list(A)"), "{stdout}");
    let (ok, stdout, _) = slp(&["match", f.to_str().unwrap(), "int", "cons(X, nil)"]);
    assert!(ok);
    assert!(stdout.contains("fail"), "{stdout}");
}

#[test]
fn info_summarizes_declarations() {
    let f = write_fixture("info.slp", APP);
    let (ok, stdout, _) = slp(&["info", f.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("cons/2"));
    assert!(stdout.contains("list/1"));
    assert!(stdout.contains("app/3"));
}

#[test]
fn filter_generates_int2nat() {
    let f = write_fixture("filter.slp", APP);
    let (ok, stdout, _) = slp(&["filter", f.to_str().unwrap(), "int", "nat"]);
    assert!(ok, "{stdout}");
    // The paper's int2nat, modulo naming: one clause per nat shape.
    assert!(stdout.contains("PRED filter0(int, nat)."), "{stdout}");
    assert!(stdout.contains("filter0(0, 0)."), "{stdout}");
    assert!(stdout.contains("succ"), "{stdout}");
}

#[test]
fn export_round_trips_through_check() {
    let f = write_fixture("export.slp", APP);
    let (ok, stdout, _) = slp(&["export", f.to_str().unwrap()]);
    assert!(ok);
    let f2 = write_fixture("export2.slp", &stdout);
    let (ok2, stdout2, stderr2) = slp(&["check", f2.to_str().unwrap()]);
    assert!(ok2, "exported program fails: {stdout2} {stderr2}\n{stdout}");
}

/// Path of a committed paper-world example program.
fn example(name: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

/// Runs `slp` with and without `--no-table` and requires byte-identical
/// status, stdout and stderr — tabling must be observationally inert.
fn golden(args: &[&str]) -> (bool, String, String) {
    let tabled = slp(args);
    let mut untabled_args = args.to_vec();
    untabled_args.push("--no-table");
    let untabled = slp(&untabled_args);
    assert_eq!(
        tabled, untabled,
        "`--no-table` changed observable output for {args:?}"
    );
    tabled
}

#[test]
fn no_table_is_byte_identical_on_paper_examples() {
    for name in ["app.slp", "naturals.slp"] {
        let f = example(name);
        let (ok, stdout, _) = golden(&["check", &f]);
        assert!(ok, "{name} should be well-typed: {stdout}");
        let (ok, _, _) = golden(&["run", &f]);
        assert!(ok);
        let (ok, _, _) = golden(&["audit", &f]);
        assert!(ok);
        golden(&["info", &f]);
        golden(&["export", &f]);
    }
}

#[test]
fn no_table_is_byte_identical_on_judgement_commands() {
    let f = example("app.slp");
    let (_, stdout, _) = golden(&["subtype", &f, "int", "nat"]);
    assert!(stdout.contains("derivable"), "{stdout}");
    let (_, stdout, _) = golden(&["subtype", &f, "nat", "int"]);
    assert!(stdout.contains("not derivable"), "{stdout}");
    golden(&["subtype", &f, "list(nat)", "nelist(nat)"]);
    golden(&["match", &f, "list(A)", "cons(X, Y)"]);
    golden(&["filter", &f, "int", "nat"]);
}

#[test]
fn parse_errors_have_positions() {
    let f = write_fixture("syntax.slp", "FUNC a b.");
    let (ok, _, stderr) = slp(&["check", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("1:"), "{stderr}");
}

/// Like [`slp`], but returns the raw exit code.
fn slp_code(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_slp"))
        .args(args)
        .output()
        .expect("slp runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_flags_exit_2_with_usage_on_stderr() {
    let f = example("app.slp");
    for args in [
        &["check", &f, "--frobnicate"] as &[&str],
        &["lint", &f, "--deny-warnings"],
        &["run", &f, "--jobs", "2"],
        &["--jobs", "2"],
    ] {
        let (code, stdout, stderr) = slp_code(args);
        assert_eq!(code, 2, "{args:?} must be rejected");
        assert!(stdout.is_empty(), "{args:?} printed to stdout: {stdout}");
        assert!(stderr.contains("usage:"), "{args:?} stderr: {stderr}");
    }
    let (code, _, stderr) = slp_code(&["check", &f, "--jobs"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("expects a value"), "{stderr}");
    let (code, _, stderr) = slp_code(&["check", &f, "--jobs", "many"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("expects a number"), "{stderr}");
}

#[test]
fn unknown_command_exits_2() {
    let (code, stdout, stderr) = slp_code(&["chek", "x.slp"]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty());
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn multi_file_check_prefixes_and_orders_output() {
    let app = example("app.slp");
    let nat = example("naturals.slp");
    let (code, stdout, stderr) = slp_code(&["check", &app, &nat]);
    assert_eq!(code, 0, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].starts_with(&app), "{stdout}");
    assert!(lines[1].starts_with(&nat), "{stdout}");
    assert!(lines[0].contains("well-typed"), "{stdout}");
}

#[test]
fn multi_file_exit_code_is_worst_per_file() {
    let good = example("app.slp");
    let bad = write_fixture("worst.slp", &format!("{APP}\n:- app(nil, 0, 0)."));
    let bad = bad.to_str().unwrap();
    let (code, stdout, stderr) = slp_code(&["check", &good, bad]);
    assert_eq!(code, 2);
    // The clean file's summary still reaches stdout; the errors go to
    // stderr.
    assert!(stdout.contains("well-typed"), "{stdout}");
    assert!(stderr.contains("ill-typed"), "{stderr}");
}

#[test]
fn missing_file_in_batch_reports_on_stderr() {
    let good = example("app.slp");
    let (code, stdout, stderr) = slp_code(&["check", &good, "no-such-file.slp"]);
    assert_eq!(code, 2);
    assert!(stdout.contains("well-typed"), "{stdout}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn glob_expands_in_sorted_order() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let pattern = format!("{}/natural?.slp", dir.to_str().unwrap());
    let (code, stdout, _) = slp_code(&["check", &pattern]);
    assert_eq!(code, 0);
    assert!(stdout.contains("well-typed"), "{stdout}");
    let (code, _, stderr) = slp_code(&["check", &format!("{}/zzz*.slp", dir.to_str().unwrap())]);
    assert_eq!(code, 2);
    assert!(stderr.contains("matches no files"), "{stderr}");
}

#[test]
fn jobs_one_and_four_are_byte_identical() {
    let files = [
        example("app.slp"),
        example("naturals.slp"),
        example("lint_demo.slp"),
    ];
    let files: Vec<&str> = files.iter().map(String::as_str).collect();
    for cmd in [
        &["check"] as &[&str],
        &["lint"],
        &["lint", "--format", "json"],
    ] {
        let mut serial: Vec<&str> = cmd.to_vec();
        serial.extend(&files);
        serial.extend(["--jobs", "1"]);
        let mut parallel: Vec<&str> = cmd.to_vec();
        parallel.extend(&files);
        parallel.extend(["--jobs", "4"]);
        assert_eq!(
            slp_code(&serial),
            slp_code(&parallel),
            "--jobs changed observable output for {cmd:?}"
        );
    }
    // Single file: `check --jobs 4` takes the clause-parallel path.
    for file in &files {
        assert_eq!(
            slp_code(&["check", file, "--jobs", "1"]),
            slp_code(&["check", file, "--jobs", "4"]),
            "clause-level parallelism changed output for {file}"
        );
    }
}
