//! End-to-end tests of the `slp` command-line interface.

use std::io::Write;
use std::process::Command;

const APP: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
    PRED app(list(A), list(A), list(A)).
    app(nil, L, L).
    app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
    :- app(cons(0, nil), cons(succ(0), nil), Z).
";

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("slp-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

fn slp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_slp"))
        .args(args)
        .output()
        .expect("slp runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn check_accepts_well_typed_program() {
    let f = write_fixture("app.slp", APP);
    let (ok, stdout, _) = slp(&["check", f.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("well-typed"));
}

#[test]
fn check_rejects_ill_typed_query() {
    let f = write_fixture("bad.slp", &format!("{APP}\n:- app(nil, 0, 0)."));
    let (ok, _, stderr) = slp(&["check", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("ill-typed"));
}

#[test]
fn run_prints_answer() {
    let f = write_fixture("run.slp", APP);
    let (ok, stdout, _) = slp(&["run", f.to_str().unwrap()]);
    assert!(ok, "stdout: {stdout}");
    assert!(
        stdout.contains("Z = cons(0, cons(succ(0), nil))"),
        "{stdout}"
    );
}

#[test]
fn audit_reports_clean_run() {
    let f = write_fixture("audit.slp", APP);
    let (ok, stdout, _) = slp(&["audit", f.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 violation(s)"));
    assert!(stdout.contains("answers consistent"));
}

#[test]
fn subtype_judgements() {
    let f = write_fixture("sub.slp", APP);
    let (ok, stdout, _) = slp(&["subtype", f.to_str().unwrap(), "int", "nat"]);
    assert!(ok);
    assert!(stdout.contains("derivable"), "{stdout}");
    let (ok, stdout, _) = slp(&["subtype", f.to_str().unwrap(), "nat", "int"]);
    assert!(ok);
    assert!(stdout.contains("not derivable"), "{stdout}");
}

#[test]
fn match_judgements() {
    let f = write_fixture("match.slp", APP);
    let (ok, stdout, _) = slp(&["match", f.to_str().unwrap(), "list(A)", "cons(X, Y)"]);
    assert!(ok);
    assert!(stdout.contains("X ↦ A"), "{stdout}");
    assert!(stdout.contains("Y ↦ list(A)"), "{stdout}");
    let (ok, stdout, _) = slp(&["match", f.to_str().unwrap(), "int", "cons(X, nil)"]);
    assert!(ok);
    assert!(stdout.contains("fail"), "{stdout}");
}

#[test]
fn info_summarizes_declarations() {
    let f = write_fixture("info.slp", APP);
    let (ok, stdout, _) = slp(&["info", f.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("cons/2"));
    assert!(stdout.contains("list/1"));
    assert!(stdout.contains("app/3"));
}

#[test]
fn filter_generates_int2nat() {
    let f = write_fixture("filter.slp", APP);
    let (ok, stdout, _) = slp(&["filter", f.to_str().unwrap(), "int", "nat"]);
    assert!(ok, "{stdout}");
    // The paper's int2nat, modulo naming: one clause per nat shape.
    assert!(stdout.contains("PRED filter0(int, nat)."), "{stdout}");
    assert!(stdout.contains("filter0(0, 0)."), "{stdout}");
    assert!(stdout.contains("succ"), "{stdout}");
}

#[test]
fn export_round_trips_through_check() {
    let f = write_fixture("export.slp", APP);
    let (ok, stdout, _) = slp(&["export", f.to_str().unwrap()]);
    assert!(ok);
    let f2 = write_fixture("export2.slp", &stdout);
    let (ok2, stdout2, stderr2) = slp(&["check", f2.to_str().unwrap()]);
    assert!(ok2, "exported program fails: {stdout2} {stderr2}\n{stdout}");
}

/// Path of a committed paper-world example program.
fn example(name: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

/// Runs `slp` with and without `--no-table` and requires byte-identical
/// status, stdout and stderr — tabling must be observationally inert.
fn golden(args: &[&str]) -> (bool, String, String) {
    let tabled = slp(args);
    let mut untabled_args = args.to_vec();
    untabled_args.push("--no-table");
    let untabled = slp(&untabled_args);
    assert_eq!(
        tabled, untabled,
        "`--no-table` changed observable output for {args:?}"
    );
    tabled
}

#[test]
fn no_table_is_byte_identical_on_paper_examples() {
    for name in ["app.slp", "naturals.slp"] {
        let f = example(name);
        let (ok, stdout, _) = golden(&["check", &f]);
        assert!(ok, "{name} should be well-typed: {stdout}");
        let (ok, _, _) = golden(&["run", &f]);
        assert!(ok);
        let (ok, _, _) = golden(&["audit", &f]);
        assert!(ok);
        golden(&["info", &f]);
        golden(&["export", &f]);
    }
}

#[test]
fn no_table_is_byte_identical_on_judgement_commands() {
    let f = example("app.slp");
    let (_, stdout, _) = golden(&["subtype", &f, "int", "nat"]);
    assert!(stdout.contains("derivable"), "{stdout}");
    let (_, stdout, _) = golden(&["subtype", &f, "nat", "int"]);
    assert!(stdout.contains("not derivable"), "{stdout}");
    golden(&["subtype", &f, "list(nat)", "nelist(nat)"]);
    golden(&["match", &f, "list(A)", "cons(X, Y)"]);
    golden(&["filter", &f, "int", "nat"]);
}

#[test]
fn parse_errors_have_positions() {
    let f = write_fixture("syntax.slp", "FUNC a b.");
    let (ok, _, stderr) = slp(&["check", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("1:"), "{stderr}");
}

/// Like [`slp`], but returns the raw exit code.
fn slp_code(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_slp"))
        .args(args)
        .output()
        .expect("slp runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_flags_exit_2_with_usage_on_stderr() {
    let f = example("app.slp");
    for args in [
        &["check", &f, "--frobnicate"] as &[&str],
        &["lint", &f, "--deny-warnings"],
        &["run", &f, "--jobs", "2"],
        &["--jobs", "2"],
    ] {
        let (code, stdout, stderr) = slp_code(args);
        assert_eq!(code, 2, "{args:?} must be rejected");
        assert!(stdout.is_empty(), "{args:?} printed to stdout: {stdout}");
        assert!(stderr.contains("usage:"), "{args:?} stderr: {stderr}");
    }
    let (code, _, stderr) = slp_code(&["check", &f, "--jobs"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("expects a value"), "{stderr}");
    let (code, _, stderr) = slp_code(&["check", &f, "--jobs", "many"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("expects a number"), "{stderr}");
}

#[test]
fn unknown_command_exits_2() {
    let (code, stdout, stderr) = slp_code(&["chek", "x.slp"]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty());
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn multi_file_check_prefixes_and_orders_output() {
    let app = example("app.slp");
    let nat = example("naturals.slp");
    let (code, stdout, stderr) = slp_code(&["check", &app, &nat]);
    assert_eq!(code, 0, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].starts_with(&app), "{stdout}");
    assert!(lines[1].starts_with(&nat), "{stdout}");
    assert!(lines[0].contains("well-typed"), "{stdout}");
}

#[test]
fn multi_file_exit_code_is_worst_per_file() {
    let good = example("app.slp");
    let bad = write_fixture("worst.slp", &format!("{APP}\n:- app(nil, 0, 0)."));
    let bad = bad.to_str().unwrap();
    let (code, stdout, stderr) = slp_code(&["check", &good, bad]);
    assert_eq!(code, 2);
    // The clean file's summary still reaches stdout; the errors go to
    // stderr.
    assert!(stdout.contains("well-typed"), "{stdout}");
    assert!(stderr.contains("ill-typed"), "{stderr}");
}

#[test]
fn missing_file_in_batch_reports_on_stderr() {
    let good = example("app.slp");
    let (code, stdout, stderr) = slp_code(&["check", &good, "no-such-file.slp"]);
    assert_eq!(code, 2);
    assert!(stdout.contains("well-typed"), "{stdout}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn glob_expands_in_sorted_order() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let pattern = format!("{}/natural?.slp", dir.to_str().unwrap());
    let (code, stdout, _) = slp_code(&["check", &pattern]);
    assert_eq!(code, 0);
    assert!(stdout.contains("well-typed"), "{stdout}");
    let (code, _, stderr) = slp_code(&["check", &format!("{}/zzz*.slp", dir.to_str().unwrap())]);
    assert_eq!(code, 2);
    assert!(stderr.contains("matches no files"), "{stderr}");
}

#[test]
fn jobs_one_and_four_are_byte_identical() {
    let files = [
        example("app.slp"),
        example("naturals.slp"),
        example("lint_demo.slp"),
        example("modes_demo.slp"),
    ];
    let files: Vec<&str> = files.iter().map(String::as_str).collect();
    for cmd in [
        &["check"] as &[&str],
        &["lint"],
        &["lint", "--format", "json"],
    ] {
        let mut serial: Vec<&str> = cmd.to_vec();
        serial.extend(&files);
        serial.extend(["--jobs", "1"]);
        let mut parallel: Vec<&str> = cmd.to_vec();
        parallel.extend(&files);
        parallel.extend(["--jobs", "4"]);
        assert_eq!(
            slp_code(&serial),
            slp_code(&parallel),
            "--jobs changed observable output for {cmd:?}"
        );
    }
    // Single file: `check --jobs 4` takes the clause-parallel path.
    for file in &files {
        assert_eq!(
            slp_code(&["check", file, "--jobs", "1"]),
            slp_code(&["check", file, "--jobs", "4"]),
            "clause-level parallelism changed output for {file}"
        );
    }
}

// ---------------------------------------------------------------------------
// Observability: --stats and --trace
// ---------------------------------------------------------------------------

/// Masks every numeric value in a metrics document, leaving only field
/// names, order and structure — the stable part of the schema.
fn mask_numbers(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut chars = doc.chars().peekable();
    let mut prev = '\0';
    while let Some(c) = chars.next() {
        if prev == ':' && (c.is_ascii_digit()) {
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() || d == '.' {
                    chars.next();
                } else {
                    break;
                }
            }
            out.push('N');
            prev = 'N';
        } else {
            out.push(c);
            prev = c;
        }
    }
    out
}

#[test]
fn stats_leaves_stdout_byte_identical() {
    let f = write_fixture("stats_identical.slp", APP);
    let file = f.to_str().unwrap();
    let (ok_plain, out_plain, err_plain) = slp(&["check", file]);
    let (ok_stats, out_stats, err_stats) = slp(&["check", file, "--stats", "--format", "json"]);
    assert!(ok_plain && ok_stats);
    assert_eq!(out_plain, out_stats, "--stats must not touch stdout");
    assert!(err_plain.is_empty());
    assert!(
        err_stats.contains("\"schema\":\"slp-metrics/1\""),
        "{err_stats}"
    );
}

#[test]
fn stats_json_matches_schema_golden_and_round_trips() {
    use subtype_lp::core::obs::json::JsonValue;

    let f = write_fixture("stats_schema.slp", APP);
    let (ok, _, stderr) = slp(&["check", f.to_str().unwrap(), "--stats", "--format", "json"]);
    assert!(ok);
    let doc = stderr.trim_end();
    // Key order is part of the contract: the masked document must be
    // byte-identical to the committed golden.
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/stats_schema.txt");
    let golden = std::fs::read_to_string(&golden_path).expect("committed stats schema golden");
    assert_eq!(
        format!("{}\n", mask_numbers(doc)),
        golden,
        "stats schema drifted; re-bless with scripts/bless.sh if intentional"
    );
    // The document survives the serde-free parser byte-for-byte.
    let parsed = JsonValue::parse(doc).expect("stats document parses");
    assert_eq!(parsed.render(), doc, "render(parse(doc)) != doc");
    // Spot-check values through the parsed form.
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(
        counters.get("files_processed").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        counters.get("clause_checks").and_then(JsonValue::as_u64),
        Some(2)
    );
}

#[test]
fn stats_human_format_lists_every_counter() {
    let f = write_fixture("stats_human.slp", APP);
    let (ok, _, stderr) = slp(&["check", f.to_str().unwrap(), "--stats"]);
    assert!(ok);
    assert!(stderr.contains("metrics (slp-metrics/1)"), "{stderr}");
    for name in ["table_hits", "subtype_goals", "files_processed"] {
        assert!(stderr.contains(name), "missing {name} in:\n{stderr}");
    }
}

#[test]
fn trace_writes_parseable_jsonl_spans() {
    use subtype_lp::core::obs::json::JsonValue;

    let f = write_fixture("trace.slp", APP);
    let trace = std::env::temp_dir().join("slp-cli-tests/trace-out.jsonl");
    let (ok, _, _) = slp(&[
        "check",
        f.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok);
    let log = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!log.is_empty(), "trace log must not be empty");
    let mut seen = std::collections::BTreeSet::new();
    for (i, line) in log.lines().enumerate() {
        let event = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("trace line {i} is not JSON ({e}): {line}"));
        assert_eq!(
            event.get("seq").and_then(JsonValue::as_u64),
            Some(i as u64),
            "sequence numbers are dense from 0"
        );
        assert!(event.get("t_ns").is_some());
        let ev = event
            .get("ev")
            .and_then(JsonValue::as_str)
            .expect("every span names its event");
        seen.insert(ev.to_string());
    }
    for expected in ["check.begin", "check.end", "subtype.start", "subtype.end"] {
        assert!(seen.contains(expected), "no {expected} span in {seen:?}");
    }
}

/// `--verify-witnesses` is a silent audit on a healthy program: stdout is
/// byte-identical to a plain check at every job count, and the counters
/// confirm the audit actually replayed something.
#[test]
fn verify_witnesses_is_stdout_inert_and_counts_validations() {
    use subtype_lp::core::obs::json::JsonValue;

    let f = write_fixture("vw.slp", APP);
    let file = f.to_str().unwrap();
    let (ok, plain, _) = slp(&["check", file]);
    assert!(ok);
    for jobs in ["1", "4"] {
        let (ok, stdout, stderr) = slp(&[
            "check",
            file,
            "--jobs",
            jobs,
            "--verify-witnesses",
            "--stats",
            "--format",
            "json",
        ]);
        assert!(ok, "audit must pass on a well-typed program: {stderr}");
        assert_eq!(stdout, plain, "--verify-witnesses must not touch stdout");
        let doc = JsonValue::parse(stderr.trim_end()).expect("stats parses");
        let counter = |name: &str| {
            doc.get("counters")
                .unwrap()
                .get(name)
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert!(counter("witness_validated") >= 1, "nothing was audited");
        assert_eq!(counter("witness_invalid"), 0);
        assert!(counter("witness_emitted") >= counter("witness_validated"));
    }
}

// ---------------------------------------------------------------------------
// Modes: lint exit codes, `audit --modes`
// ---------------------------------------------------------------------------

/// A well-moded variant of [`APP`]: one declared predicate whose only call
/// supplies both inputs bound, plus an undeclared recursive predicate that
/// lints as a lone W0603 warning.
const MODED_APP: &str = "
    FUNC 0, succ, pred, nil, cons.
    TYPE nat, unnat, int, elist, nelist, list.
    nat >= 0 + succ(nat).
    unnat >= 0 + pred(unnat).
    int >= nat + unnat.
    elist >= nil.
    nelist(A) >= cons(A, list(A)).
    list(A) >= elist + nelist(A).
    PRED app(list(A), list(A), list(A)).
    MODE app(+, +, -).
    app(nil, L, L).
    app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
    PRED loop(nat).
    loop(X) :- loop(X).
    :- app(cons(0, nil), cons(succ(0), nil), Z).
";

#[test]
fn lint_exit_codes_let_errors_beat_denied_warnings() {
    let warn = write_fixture("warn_only.slp", MODED_APP);
    let warn = warn.to_str().unwrap();
    let dirty = example("modes_demo.slp");
    let clean = example("app.slp");
    // Warnings alone: 0 by default, 1 under --deny warnings.
    let (code, _, _) = slp_code(&["lint", warn]);
    assert_eq!(code, 0);
    let (code, _, _) = slp_code(&["lint", warn, "--deny", "warnings"]);
    assert_eq!(code, 1);
    // Errors always win: a file with both errors and warnings exits 2
    // whether or not warnings are denied — never 1.
    let (code, _, _) = slp_code(&["lint", &dirty]);
    assert_eq!(code, 2);
    let (code, _, _) = slp_code(&["lint", &dirty, "--deny", "warnings"]);
    assert_eq!(code, 2);
    // Batch exit code is the per-file maximum under the same ordering.
    let (code, _, _) = slp_code(&["lint", &clean, warn, "--deny", "warnings"]);
    assert_eq!(code, 1);
    let (code, _, _) = slp_code(&["lint", &clean, warn, &dirty, "--deny", "warnings"]);
    assert_eq!(code, 2);
}

#[test]
fn audit_modes_flags_the_counterexample() {
    let f = example("modes_demo.slp");
    let (code, stdout, stderr) = slp_code(&["audit", &f, "--modes"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("mode violations detected"), "{stderr}");
    assert!(stdout.contains("error[E0604]"), "{stdout}");
    assert!(stdout.contains("mode report:"), "{stdout}");
    // The dynamic walk itself is clean on the well-moded query 0.
    assert!(stdout.contains("0 mode violation(s)"), "{stdout}");
    assert!(stdout.contains("answers consistent"), "{stdout}");
}

#[test]
fn audit_modes_catches_the_runtime_violation() {
    let f = example("modes_demo.slp");
    let (code, stdout, _) = slp_code(&["audit", &f, "--modes", "-q", "1"]);
    assert_eq!(code, 2);
    assert!(
        stdout.contains("mode violation at depth 0: input argument 1 of `use`"),
        "{stdout}"
    );
    assert!(stdout.contains("1 mode violation(s)"), "{stdout}");
}

#[test]
fn audit_modes_passes_the_well_moded_variant() {
    let f = write_fixture("well_moded.slp", MODED_APP);
    let (code, stdout, stderr) = slp_code(&["audit", f.to_str().unwrap(), "--modes"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stdout.contains("0 mode violation(s)"), "{stdout}");
    assert!(stdout.contains("app(+, +, -)  [declared]"), "{stdout}");
    assert!(stdout.contains("loop(+)  [inferred]"), "{stdout}");
}

#[test]
fn audit_modes_is_byte_identical_across_job_counts() {
    let f = example("modes_demo.slp");
    for query in ["0", "1"] {
        assert_eq!(
            slp_code(&["audit", &f, "--modes", "-q", query, "--jobs", "1"]),
            slp_code(&["audit", &f, "--modes", "-q", query, "--jobs", "4"]),
            "--jobs changed `audit --modes` output on query {query}"
        );
    }
}

#[test]
fn audit_modes_json_is_parseable_and_structured() {
    use subtype_lp::core::obs::json::JsonValue;

    let f = example("modes_demo.slp");
    let (code, stdout, _) = slp_code(&["audit", &f, "--modes", "-q", "1", "--format", "json"]);
    assert_eq!(code, 2);
    let doc = JsonValue::parse(stdout.trim_end()).expect("audit doc parses");
    assert_eq!(
        doc.get("slp-audit-modes").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(doc.get("well_moded"), Some(&JsonValue::Bool(false)));
    let Some(JsonValue::Arr(violations)) = doc.get("mode_violations") else {
        panic!("mode_violations array missing");
    };
    assert_eq!(violations.len(), 1, "{stdout}");
    assert_eq!(
        violations[0].get("pred").and_then(JsonValue::as_str),
        Some("use")
    );
    assert_eq!(
        violations[0].get("argument").and_then(JsonValue::as_u64),
        Some(1)
    );
    let Some(JsonValue::Arr(modes)) = doc.get("modes") else {
        panic!("modes array missing");
    };
    assert_eq!(modes.len(), 6, "{stdout}");
}

#[test]
fn counter_metrics_agree_across_job_counts() {
    use subtype_lp::core::obs::json::JsonValue;
    use subtype_lp::core::Counter;

    let f = write_fixture("stats_jobs.slp", APP);
    let file = f.to_str().unwrap();
    let doc = |jobs: &str| {
        let (ok, _, stderr) = slp(&["check", file, "--jobs", jobs, "--stats", "--format", "json"]);
        assert!(ok);
        JsonValue::parse(stderr.trim_end()).expect("stats parses")
    };
    let serial = doc("1");
    for jobs in ["4", "8"] {
        let parallel = doc(jobs);
        for c in Counter::ALL {
            if !c.scheduling_invariant() {
                continue;
            }
            assert_eq!(
                serial
                    .get("counters")
                    .unwrap()
                    .get(c.name())
                    .unwrap()
                    .as_u64(),
                parallel
                    .get("counters")
                    .unwrap()
                    .get(c.name())
                    .unwrap()
                    .as_u64(),
                "{} must not depend on --jobs {jobs}",
                c.name()
            );
        }
    }
}
