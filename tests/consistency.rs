//! Experiment E7: Theorem 6 (consistency) validated over generated
//! well-typed programs, plus fault injection on corrupted ones.

use subtype_lp::core::consistency::{AuditConfig, Auditor};
use subtype_lp::core::{Checker, ConstraintSet, PredTypeTable};
use subtype_lp::gen::programs;
use subtype_lp::TypedProgram;

#[test]
fn pipelines_execute_consistently() {
    for (n, k) in [(2, 1), (4, 2)] {
        let mut src = programs::pipeline(n, k);
        // Drive the first stage on a concrete list.
        src.push_str(":- p0(cons(0, cons(succ(0), cons(0, nil))), R).\n");
        let p = TypedProgram::from_source(&src).unwrap();
        p.check_all().unwrap();
        let report = p.audit_query(0, AuditConfig::default());
        assert!(
            report.is_clean(),
            "pipeline({n},{k}): {:?}",
            report.violations
        );
        assert!(!report.solutions.is_empty());
    }
}

#[test]
fn nrev_workload_is_clean_at_every_size() {
    for n in [0, 1, 5, 10] {
        let p = TypedProgram::from_source(&programs::nrev(n)).unwrap();
        p.check_all().unwrap();
        let report = p.audit_query(0, AuditConfig::default());
        assert!(report.is_clean(), "nrev({n}): {:?}", report.violations);
        assert_eq!(report.solutions.len(), 1);
        // nrev produces Θ(n²) resolvents.
        if n >= 5 {
            assert!(report.resolvents_checked as usize >= n * n / 2);
        }
    }
}

#[test]
fn fact_base_scan_is_clean() {
    let p = TypedProgram::from_source(&programs::fact_base(25)).unwrap();
    p.check_all().unwrap();
    let report = p.audit_query(
        0,
        AuditConfig {
            max_solutions: 25,
            ..AuditConfig::default()
        },
    );
    assert!(report.is_clean());
    assert_eq!(report.solutions.len(), 25);
}

#[test]
fn corrupted_pipelines_rejected_statically() {
    for errors in [1, 3] {
        let src = programs::pipeline_with_errors(3, 2, errors);
        let p = TypedProgram::from_source(&src).unwrap();
        let err = p.check_clauses().unwrap_err();
        let subtype_lp::Error::Check(list) = err else {
            panic!("expected Check errors");
        };
        assert_eq!(list.len(), errors);
    }
}

#[test]
fn fault_injection_surfaces_at_runtime() {
    // Bypass static checking; the auditor must flag the run.
    let src = format!(
        "{}
         PRED head(list(int), int).
         head(cons(X, L), X).
         head(nil, nil).     % ill-typed: nil is not an int
         :- head(L, X).
        ",
        programs::LIST_DECLS
    );
    let module = subtype_lp::parser::parse_module(&src).unwrap();
    let cs = ConstraintSet::from_module(&module)
        .unwrap()
        .checked(&module.sig)
        .unwrap();
    let preds = PredTypeTable::from_module(&module).unwrap();
    let checker = Checker::new(&module.sig, &cs, &preds);
    let clauses: Vec<_> = module.clauses.iter().map(|c| c.clause.clone()).collect();
    assert!(checker.check_program(clauses.iter()).is_err());

    let db = module.database();
    let report = Auditor::new(checker).run(&db, &module.queries[0].goals, AuditConfig::default());
    assert!(
        !report.is_clean(),
        "the auditor must catch consequences of the ill-typed fact"
    );
}

#[test]
fn audit_resolvent_counts_match_plain_execution() {
    // The auditor must not change the search itself: solution sets agree
    // with un-audited runs.
    let src = programs::nrev(6);
    let p = TypedProgram::from_source(&src).unwrap();
    let audited = p.audit_query(0, AuditConfig::default());
    let plain = p.run_query(0, 10);
    assert_eq!(audited.solutions.len(), plain.len());
    for (a, b) in audited.solutions.iter().zip(&plain) {
        assert_eq!(a.depth, b.depth);
    }
}

#[test]
fn theorem6_holds_under_backtracking_heavy_queries() {
    // Open-ended append query: many choice points, many resolvents.
    let src = format!(
        "{}
         PRED app(list(A), list(A), list(A)).
         app(nil, L, L).
         app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
         :- app(X, Y, cons(0, cons(pred(0), cons(succ(0), cons(0, nil))))).
        ",
        programs::LIST_DECLS
    );
    let p = TypedProgram::from_source(&src).unwrap();
    p.check_all().unwrap();
    let report = p.audit_query(
        0,
        AuditConfig {
            max_solutions: 10,
            ..AuditConfig::default()
        },
    );
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.solutions.len(), 5);
}
