//! Experiment E4: Theorem 4 (correctness of `match`), validated on random
//! inputs against the prover and small-scope enumeration.
//!
//! * If `match(τ, t) = θ`: `θ` is a respectful typing for `t` under `τ`
//!   (checked via the prover), and more general than sampled alternative
//!   typings (Definition 11).
//! * If `match(τ, t) = fail`: no typing exists — for ground `t`, exactly
//!   `t ∉ M_C⟦τ⟧`, cross-checked against both the prover and exhaustive
//!   enumeration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subtype_lp::core::typing::{is_respectful, is_typing, typing_more_general, Typing};
use subtype_lp::core::{match_type, semantics, MatchOutcome, Prover};
use subtype_lp::gen::{terms, worlds};
use subtype_lp::term::{Term, Var};

#[test]
fn theorem4_part1_returned_typings_are_respectful_and_most_general() {
    let world = worlds::paper_world();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sig = world.sig.clone();
    let mut checked_typings = 0;
    for round in 0..400 {
        let mut gen = world.gen.clone();
        let tyvars = [gen.fresh(), gen.fresh()];
        let ty = terms::random_type(&mut rng, &world, 3, &tyvars);
        // A term with a few variables: start from a random ground term and
        // punch variable holes into it.
        let ground = terms::random_ground_term(&mut rng, &world.sig, &world.funcs, 3);
        let t = punch_holes(&mut rng, &ground, &mut gen);
        if let MatchOutcome::Typing(theta) = match_type(&world.sig, &world.checked, &ty, &t) {
            checked_typings += 1;
            assert!(
                is_typing(&mut sig, &world.checked, &ty, &t, &theta),
                "round {round}: match result is not a typing: {ty:?} / {t:?} -> {theta:?}"
            );
            assert!(
                is_respectful(&mut sig, &world.checked, &ty, &t, &theta),
                "round {round}: match result is not respectful: {ty:?} / {t:?} -> {theta:?}"
            );
        }
    }
    assert!(
        checked_typings > 50,
        "workload too degenerate: only {checked_typings} typings checked"
    );
}

#[test]
fn theorem4_part1_generality_against_sampled_alternatives() {
    let world = worlds::paper_world();
    let mut rng = StdRng::seed_from_u64(43);
    let mut sig = world.sig.clone();
    let nat = Term::constant(world.sig.lookup("nat").unwrap());
    let int = Term::constant(world.sig.lookup("int").unwrap());
    let elist = Term::constant(world.sig.lookup("elist").unwrap());
    let list = world.sig.lookup("list").unwrap();
    let mut compared = 0;
    for _ in 0..200 {
        let mut gen = world.gen.clone();
        let a = gen.fresh();
        let ty = terms::random_type(&mut rng, &world, 3, &[a]);
        let ground = terms::random_ground_term(&mut rng, &world.sig, &world.funcs, 3);
        let t = punch_holes(&mut rng, &ground, &mut gen);
        let MatchOutcome::Typing(theta) = match_type(&world.sig, &world.checked, &ty, &t) else {
            continue;
        };
        // Sample alternative typings: assign arbitrary closed types to the
        // term's variables and keep those that are typings.
        for _ in 0..4 {
            let alt: Typing = t
                .vars()
                .into_iter()
                .map(|v| {
                    let pick = match rng.gen_range(0..4) {
                        0 => nat.clone(),
                        1 => int.clone(),
                        2 => elist.clone(),
                        _ => Term::app(list, vec![int.clone()]),
                    };
                    (v, pick)
                })
                .collect();
            if is_typing(&mut sig, &world.checked, &ty, &t, &alt) {
                compared += 1;
                assert!(
                    typing_more_general(&mut sig, &world.checked, &theta, &alt, &t),
                    "match typing {theta:?} not more general than {alt:?} for {ty:?}/{t:?}"
                );
            }
        }
    }
    assert!(
        compared > 20,
        "workload too degenerate: {compared} comparisons"
    );
}

#[test]
fn theorem4_part2_fail_means_no_typing_ground_case() {
    // For ground terms, "no typing" is exactly non-membership; enumeration
    // provides an independent oracle.
    let world = worlds::paper_world();
    let prover = Prover::new(&world.sig, &world.checked);
    let mut rng = StdRng::seed_from_u64(44);
    let mut fails = 0;
    for _ in 0..300 {
        let ty = terms::random_type(&mut rng, &world, 2, &[]);
        let t = terms::random_ground_term(&mut rng, &world.sig, &world.funcs, 3);
        let out = match_type(&world.sig, &world.checked, &ty, &t);
        if out.is_fail() {
            fails += 1;
            let proof = prover.member(&ty, &t);
            assert!(!proof.is_proved(), "match said fail but {t:?} ∈ M⟦{ty:?}⟧");
            // Independent oracle: enumeration up to this term's depth.
            let inh = semantics::inhabitants(&world.sig, &world.checked, &ty, t.depth());
            assert!(!inh.contains(&t));
        }
    }
    assert!(fails > 30, "workload too degenerate: {fails} fail outcomes");
}

#[test]
fn match_agrees_with_membership_for_ground_terms_when_not_bottom() {
    // For ground t, match(τ, t) = θ implies θ = {} and t ∈ M⟦τ⟧;
    // match = fail implies t ∉ M⟦τ⟧; ⊥ makes no claim.
    let world = worlds::paper_world();
    let prover = Prover::new(&world.sig, &world.checked);
    let mut rng = StdRng::seed_from_u64(45);
    for _ in 0..300 {
        let ty = terms::random_type(&mut rng, &world, 2, &[]);
        let t = terms::random_ground_term(&mut rng, &world.sig, &world.funcs, 3);
        match match_type(&world.sig, &world.checked, &ty, &t) {
            MatchOutcome::Typing(theta) => {
                assert!(theta.is_empty());
                assert!(prover.member(&ty, &t).is_proved());
            }
            MatchOutcome::Fail => assert!(!prover.member(&ty, &t).is_proved()),
            MatchOutcome::Bottom => {}
        }
    }
}

#[test]
fn theorem5_match_terminates_on_random_worlds() {
    // Termination (Theorem 5) exercised over random guarded worlds — if
    // match diverged, the test harness would hang; we also sanity-check the
    // outcome distribution isn't degenerate.
    let mut counts = [0usize; 3];
    for seed in 0..10 {
        let world = worlds::random(seed, worlds::RandomWorldConfig::default());
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        for _ in 0..50 {
            let ty = terms::random_type(&mut rng, &world, 3, &[]);
            let t = terms::random_ground_term(&mut rng, &world.sig, &world.funcs, 3);
            match match_type(&world.sig, &world.checked, &ty, &t) {
                MatchOutcome::Typing(_) => counts[0] += 1,
                MatchOutcome::Fail => counts[1] += 1,
                MatchOutcome::Bottom => counts[2] += 1,
            }
        }
    }
    assert!(counts[0] + counts[1] + counts[2] == 500);
    assert!(counts[1] > 0, "some matches should fail");
}

/// Replaces random leaves of a ground term with fresh variables.
fn punch_holes(rng: &mut StdRng, t: &Term, gen: &mut subtype_lp::term::VarGen) -> Term {
    match t {
        Term::Var(v) => Term::Var(*v),
        Term::App(s, args) => {
            if args.is_empty() && rng.gen_bool(0.3) {
                return Term::Var(gen.fresh());
            }
            Term::app(*s, args.iter().map(|a| punch_holes(rng, a, gen)).collect())
        }
    }
}

// Var is referenced in signatures above.
#[allow(unused)]
fn _keep(v: Var) {}
